"""Admission control: cost classes, shed policies, retry hints."""

import threading

import pytest

from repro import obs
from repro.errors import ParameterError
from repro.graph.generators import planted_kvcc_graph
from repro.serving import KvccIndex, QueryEngine
from repro.serving.admission import (
    COST_CLASSES,
    SHED_POLICIES,
    AdmissionController,
    cost_class,
)
from repro.serving.protocol import handle_request


@pytest.fixture(scope="module")
def graph():
    return planted_kvcc_graph(2, 10, 3, seed=4)


class TestCostClass:
    def test_query_is_point(self):
        assert cost_class({"op": "query", "v": 0, "k": 2}) == "point"

    def test_reload_is_reload(self):
        assert cost_class({"op": "reload"}) == "reload"

    def test_mixed_batch_is_batch(self):
        request = {
            "op": "batch",
            "queries": [{"v": 0, "k": 2}, {"v": 1, "k": 2}],
        }
        assert cost_class(request) == "batch"

    def test_single_vertex_sweep_is_scan(self):
        request = {
            "op": "batch",
            "queries": [{"v": 7, "k": k} for k in range(1, 5)],
        }
        assert cost_class(request) == "scan"

    def test_single_query_batch_is_batch_not_scan(self):
        request = {"op": "batch", "queries": [{"v": 7, "k": 1}]}
        assert cost_class(request) == "batch"

    @pytest.mark.parametrize("op", ["ping", "stats", "shutdown", "nope"])
    def test_control_and_unknown_ops_bypass(self, op):
        assert cost_class({"op": op}) is None


class TestController:
    def test_admits_when_a_slot_is_free(self):
        controller = AdmissionController(workers=1, max_queue=0)
        ticket = controller.admit("point")
        assert ticket is not None and ticket.cost_class == "point"
        ticket.release()
        # The freed slot admits the next request.
        with controller.admit("point") as again:
            assert again is not None

    def test_bounded_sheds_past_the_queue(self):
        controller = AdmissionController(
            workers=1, max_queue=0, shed_policy="bounded"
        )
        held = controller.admit("point")
        assert controller.admit("point") is None  # busy, no queue slots
        held.release()

    def test_strict_never_queues(self):
        controller = AdmissionController(
            workers=1, max_queue=32, shed_policy="strict"
        )
        assert controller.max_queue == 0
        held = controller.admit("point")
        assert controller.admit("point") is None
        held.release()

    def test_block_waits_instead_of_shedding(self):
        controller = AdmissionController(
            workers=1, max_queue=0, shed_policy="block"
        )
        held = controller.admit("point")
        admitted = []

        def waiter():
            ticket = controller.admit("point")
            admitted.append(ticket)
            ticket.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # parked at the bound, not shed
        held.release()
        thread.join(timeout=5)
        assert not thread.is_alive() and admitted[0] is not None

    def test_reload_queue_partition_holds_one(self):
        controller = AdmissionController(workers=1, max_queue=8)
        held = controller.admit("point")
        parked = threading.Event()

        def waiter():
            parked.set()
            ticket = controller.admit("reload")
            ticket.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        parked.wait(timeout=5)
        # Let the waiter actually reach the condition wait.
        give_up = threading.Event()
        while not give_up.wait(0.01):
            if controller.stats()["waiting"]["reload"] == 1:
                break
        # The partition is full: a second reload sheds while a point
        # request still finds queue room.
        assert controller.admit("reload") is None
        held.release()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_shed_and_admit_counters(self):
        controller = AdmissionController(workers=1, max_queue=0)
        with obs.collecting() as collector:
            held = controller.admit("point")
            assert controller.admit("scan") is None
            held.release()
        assert collector.counter("serving.admitted") == 1
        assert collector.counter("serving.shed") == 1
        assert collector.counter("serving.shed.scan") == 1

    def test_retry_after_is_clamped_and_scales_with_backlog(self):
        controller = AdmissionController(workers=1, max_queue=4)
        idle = controller.retry_after_ms("point")
        assert 10 <= idle <= 5000
        held = controller.admit("reload")
        busy = controller.retry_after_ms("reload")
        assert busy >= idle
        held.release()

    def test_release_folds_service_time_into_the_ewma(self):
        controller = AdmissionController(workers=1, max_queue=0)
        before = controller.stats()["service_ewma_ms"]["point"]
        controller.admit("point").release()
        after = controller.stats()["service_ewma_ms"]["point"]
        assert after != before  # a near-zero observation pulled it down

    def test_stats_snapshot_shape(self):
        controller = AdmissionController(
            workers=2, max_queue=8, shed_policy="bounded"
        )
        stats = controller.stats()
        assert stats["workers"] == 2
        assert stats["max_queue"] == 8
        assert stats["shed_policy"] == "bounded"
        assert set(stats["in_service"]) == set(COST_CLASSES)
        assert set(stats["waiting"]) == set(COST_CLASSES)
        assert set(stats["service_ewma_ms"]) == set(COST_CLASSES)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"max_queue": -1},
            {"shed_policy": "panic"},
        ],
    )
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            AdmissionController(**kwargs)

    def test_unknown_cost_class_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ParameterError, match="cost class"):
            controller.admit("quantum")
        assert "quantum" not in SHED_POLICIES


class TestProtocolOverload:
    def _saturated(self):
        controller = AdmissionController(workers=1, max_queue=0)
        held = controller.admit("point")
        return controller, held

    def test_shed_request_gets_overloaded_with_hint(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        controller, held = self._saturated()
        with obs.collecting() as collector:
            response, keep = handle_request(
                engine,
                {"op": "query", "v": 0, "k": 2, "id": 42},
                admission=controller,
            )
        held.release()
        assert keep is True
        assert response["code"] == "overloaded"
        assert response["retriable"] is True
        assert isinstance(response["retry_after_ms"], int)
        assert response["id"] == 42
        # The engine was never touched.
        assert collector.counter("serving.queries") == 0
        assert collector.counter("serving.errors.overloaded") == 1

    def test_control_ops_bypass_admission(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        controller, held = self._saturated()
        response, _ = handle_request(
            engine, {"op": "stats"}, admission=controller
        )
        held.release()
        assert response["ok"]
        admission = response["stats"]["admission"]
        assert admission["in_service"]["point"] == 1

    def test_admitted_request_releases_its_slot(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        controller = AdmissionController(workers=1, max_queue=0)
        response, _ = handle_request(
            engine, {"op": "query", "v": 0, "k": 2}, admission=controller
        )
        assert response["ok"]
        # The slot came back even though the op finished: a second
        # request is admitted, not shed.
        again, _ = handle_request(
            engine, {"op": "query", "v": 0, "k": 2}, admission=controller
        )
        assert again["ok"]

    def test_slot_released_even_when_the_op_errors(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        controller = AdmissionController(workers=1, max_queue=0)
        response, _ = handle_request(
            engine, {"op": "query", "v": 999999, "k": 2},
            admission=controller,
        )
        assert response["code"] == "unknown-vertex"
        assert controller.stats()["in_service"]["point"] == 0
