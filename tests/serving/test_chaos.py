"""Serving chaos stages: deterministic faults through the live daemon."""

import io
import json
import socket

import pytest

from repro import obs
from repro.graph.generators import planted_kvcc_graph
from repro.resilience.faults import FaultInjected, FaultPlan
from repro.serving import (
    KvccIndex,
    QueryEngine,
    ServeSettings,
    serve_stdio,
    serve_tcp,
)
from repro.serving import chaos
from repro.serving.protocol import handle_line


@pytest.fixture(scope="module")
def graph():
    return planted_kvcc_graph(2, 10, 3, seed=6)


@pytest.fixture(autouse=True)
def disarm():
    yield
    chaos.deactivate()


def _arm(spec: str, hang_seconds: float = 0.01) -> None:
    chaos.activate(FaultPlan.parse(spec, hang_seconds=hang_seconds))


class TestSequencing:
    def test_faults_land_on_the_exact_stage_hit(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        _arm("engine.resolve:1:raise")
        engine.query(0, 2)  # hit 0: clean
        with pytest.raises(FaultInjected):
            engine.query(1, 2)  # hit 1: armed
        engine.query(2, 2)  # hit 2: plan exhausted

    def test_draw_counts_injections(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        _arm("engine.resolve:0:hang")
        with obs.collecting() as collector:
            engine.query(0, 2)
        assert collector.counter("serving.faults_injected") == 1
        assert (
            collector.counter("serving.faults.engine.resolve.hang") == 1
        )

    def test_no_plan_is_a_noop(self, graph):
        chaos.deactivate()
        engine = QueryEngine(graph, KvccIndex.build(graph))
        assert engine.query(0, 2).components

    def test_resolve_fires_before_the_cache(self, graph):
        # A cached answer must not dodge the fault: hang-calibrated
        # service times stay cache-hit-rate independent.
        engine = QueryEngine(graph, KvccIndex.build(graph))
        engine.query(0, 2)  # warm the cache
        _arm("engine.resolve:0:raise")
        with pytest.raises(FaultInjected):
            engine.query(0, 2)


class TestServeHandle:
    def test_raise_answers_internal_and_session_survives(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        _arm("serve.handle:0:raise")
        out = io.StringIO()
        served = serve_stdio(
            engine,
            in_stream=io.StringIO(
                '{"op":"ping"}\n{"op":"ping"}\n'
            ),
            out_stream=out,
        )
        responses = [json.loads(x) for x in out.getvalue().splitlines()]
        assert served == 2
        assert responses[0]["code"] == "internal"
        assert responses[1]["ok"]

    def test_garbage_emits_an_undecodable_line(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        _arm("serve.handle:0:garbage")
        response, keep = handle_line(engine, '{"op":"ping"}')
        assert keep is True
        with pytest.raises(ValueError):
            json.loads(response)

    def test_crash_ends_the_stdio_session(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        _arm("serve.handle:1:crash")
        out = io.StringIO()
        with obs.collecting() as collector:
            served = serve_stdio(
                engine,
                in_stream=io.StringIO(
                    '{"op":"ping"}\n{"op":"ping"}\n{"op":"ping"}\n'
                ),
                out_stream=out,
            )
        assert served == 1  # the crash ate request 2 and ended the loop
        assert collector.counter("serving.sessions.crashed") == 1

    def test_crash_drops_the_tcp_connection_daemon_survives(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        _arm("serve.handle:0:crash")
        with obs.collecting() as collector:
            with serve_tcp(engine, background=True) as handle:
                with socket.create_connection(
                    handle.address, timeout=10
                ) as sock:
                    stream = sock.makefile(
                        "rw", encoding="utf-8", newline="\n"
                    )
                    stream.write('{"op":"ping"}\n')
                    stream.flush()
                    assert stream.readline() == ""  # EOF, no response
                # The daemon is still alive for the next connection.
                with socket.create_connection(
                    handle.address, timeout=10
                ) as sock:
                    stream = sock.makefile(
                        "rw", encoding="utf-8", newline="\n"
                    )
                    stream.write('{"op":"ping"}\n')
                    stream.flush()
                    assert json.loads(stream.readline())["ok"]
        assert collector.counter("serving.sessions.crashed") == 1


class TestStages:
    def test_stage_catalogue_is_stable(self):
        assert chaos.STAGES == (
            "serve.handle",
            "engine.resolve",
            "index.load",
            "index.save",
            "reload.swap",
        )

    def test_session_crash_is_not_a_repro_error(self):
        from repro.errors import ReproError

        # Nothing between the injection point and the session loop may
        # convert the crash into a polite `internal` response.
        assert not issubclass(chaos.SessionCrash, ReproError)

    def test_fire_applies_hang_and_raises_the_rest(self):
        _arm("reload.swap:0:hang,reload.swap:1:raise")
        assert chaos.fire("reload.swap") == "hang"
        with pytest.raises(FaultInjected):
            chaos.fire("reload.swap")
        assert chaos.fire("reload.swap") is None


class TestOversizedLines:
    def test_stdio_rejects_and_survives(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(max_line_bytes=128)
        big = '{"op":"query","v":"' + "x" * 1024 + '","k":1}\n'
        out = io.StringIO()
        with obs.collecting() as collector:
            served = serve_stdio(
                engine,
                settings,
                in_stream=io.StringIO(big + '{"op":"ping"}\n'),
                out_stream=out,
            )
        responses = [json.loads(x) for x in out.getvalue().splitlines()]
        assert served == 2
        assert responses[0]["code"] == "bad-request"
        assert "128" in responses[0]["error"]
        assert responses[1]["ok"]
        assert collector.counter("serving.oversized_lines") == 1

    def test_tcp_rejects_and_survives(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(max_line_bytes=128)
        big = '{"op":"query","v":"' + "x" * 1024 + '","k":1}'
        with serve_tcp(engine, settings, background=True) as handle:
            with socket.create_connection(
                handle.address, timeout=10
            ) as sock:
                stream = sock.makefile("rw", encoding="utf-8", newline="\n")
                for line in (big, '{"op":"ping"}'):
                    stream.write(line + "\n")
                    stream.flush()
                first = json.loads(stream.readline())
                second = json.loads(stream.readline())
        assert first["code"] == "bad-request"
        assert second["ok"]  # same connection, still serving
