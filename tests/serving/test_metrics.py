"""The /metrics surface: rendering, grammar validation, HTTP, top."""

import io
import json
import urllib.request

import pytest

from repro import obs
from repro.errors import ParseError
from repro.graph.generators import planted_kvcc_graph
from repro.serving import (
    AdmissionController,
    MetricsServer,
    QueryEngine,
    render_prometheus,
    serve_tcp,
    validate_exposition,
)
from repro.serving.top import delta_frame, poll_stats, render_frame, run_top


@pytest.fixture()
def collector():
    instance = obs.Collector()
    instance.count("serving.requests", 42)
    instance.count("serving.shed", 3)
    instance.add_seconds("seeding", 1.25)
    for value in (0.001, 0.002, 0.040):
        instance.observe("serving.handle_seconds.point", value)
    instance.observe("serving.handle_seconds.batch", 0.010)
    instance.observe("serving.resolve_seconds.cache", 0.0001)
    return instance


class TestRender:
    def test_counters_phases_and_histograms_all_export(self, collector):
        text = render_prometheus(collector)
        assert "# TYPE serving_requests_total counter" in text
        assert "serving_requests_total 42" in text
        assert "# TYPE seeding_phase_seconds_total counter" in text
        assert "# TYPE serving_handle_seconds histogram" in text
        # Per-class series under one family, cumulative buckets.
        assert 'serving_handle_seconds_count{class="point"} 3' in text
        assert 'serving_handle_seconds_count{class="batch"} 1' in text
        assert 'serving_resolve_seconds_count{tier="cache"} 1' in text
        assert 'le="+Inf"' in text

    def test_admission_contributes_per_class_gauges(self, collector):
        admission = AdmissionController(workers=2, max_queue=4)
        text = render_prometheus(collector, admission=admission)
        assert "# TYPE serving_queue_depth gauge" in text
        assert 'serving_queue_depth{class="point"} 0' in text
        assert "serving_queue_slots_free 2" in text
        assert "serving_workers 2" in text

    def test_engine_and_uptime_gauges(self, collector):
        graph = planted_kvcc_graph(2, 8, 3, seed=1)
        engine = QueryEngine(graph)
        import time

        text = render_prometheus(
            collector, engine=engine, started_at=time.monotonic() - 5
        )
        assert "serving_index_generation" in text
        assert "serving_cache_capacity" in text
        assert "serving_uptime_seconds" in text

    def test_rendered_exposition_always_validates(self, collector):
        admission = AdmissionController(workers=2, max_queue=4)
        declared = validate_exposition(
            render_prometheus(collector, admission=admission)
        )
        assert declared["serving_requests_total"] == "counter"
        assert declared["serving_queue_depth"] == "gauge"
        assert declared["serving_handle_seconds"] == "histogram"

    def test_exposed_bucket_counts_stay_exact(self, collector):
        # Down-sampling to power-of-two edges must preserve cumulative
        # exactness: the +Inf bucket equals the recorded count.
        text = render_prometheus(collector)
        line = next(
            candidate
            for candidate in text.splitlines()
            if candidate.startswith(
                'serving_handle_seconds_bucket{class="point",le="+Inf"}'
            )
        )
        assert line.endswith(" 3")


class TestValidator:
    def test_rejects_sample_without_type_declaration(self):
        with pytest.raises(ParseError, match="no\\s.*TYPE|TYPE"):
            validate_exposition("lonely_metric 1\n")

    def test_rejects_duplicate_family(self):
        text = (
            "# TYPE dup counter\ndup 1\n"
            "# TYPE dup counter\n"
        )
        with pytest.raises(ParseError, match="duplicate metric name"):
            validate_exposition(text)

    def test_rejects_duplicate_sample(self):
        text = (
            "# TYPE twice counter\n"
            'twice{a="1"} 1\n'
            'twice{a="1"} 2\n'
        )
        with pytest.raises(ParseError, match="duplicate sample"):
            validate_exposition(text)

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ParseError, match="non-numeric"):
            validate_exposition("# TYPE bad counter\nbad banana\n")

    def test_rejects_malformed_labels(self):
        with pytest.raises(ParseError, match="malformed labels"):
            validate_exposition(
                "# TYPE bad counter\nbad{not labels} 1\n"
            )

    def test_accepts_histogram_suffixes_under_one_declaration(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 0.5\nh_count 1\n"
        )
        assert validate_exposition(text) == {"h": "histogram"}


class TestHttpServer:
    def test_serves_metrics_healthz_and_404(self, collector):
        with MetricsServer(collector=collector) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert "version=0.0.4" in response.headers["Content-Type"]
                text = response.read().decode("utf-8")
            assert "serving_requests_total 42" in text
            validate_exposition(text)
            health_url = server.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health_url, timeout=5) as response:
                assert json.loads(response.read()) == {"ok": True}
            other = server.url.replace("/metrics", "/other")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(other, timeout=5)

    def test_port_zero_binds_ephemeral(self, collector):
        server = MetricsServer(collector=collector, port=0).start()
        try:
            assert server.port > 0
        finally:
            server.stop()


class TestTop:
    def _serve(self):
        graph = planted_kvcc_graph(2, 8, 3, seed=1)
        return serve_tcp(QueryEngine(graph), background=True)

    def test_poll_and_frames_against_a_live_daemon(self):
        with obs.collecting():
            with self._serve() as handle:
                from repro.loadtest.harness import ask

                for _ in range(5):
                    ask(handle.address, {"op": "query", "v": 0, "k": 3})
                first = poll_stats(handle.address)
                frame = delta_frame(None, first, 2.0)
                assert frame["rps"] >= 0
                assert frame["handled"] >= 5
                assert "handle_p95_ms" in frame
                rendered = render_frame(frame, handle.address)
                assert "rps" in rendered and "p95" in rendered
                # A second poll with no traffic in between: the delta
                # window shows (almost) nothing new.
                second = poll_stats(handle.address)
                quiet = delta_frame(first, second, 2.0)
                assert quiet["rps"] >= 0

    def test_run_top_writes_frames_and_returns_zero(self):
        with obs.collecting():
            with self._serve() as handle:
                out = io.StringIO()
                code = run_top(
                    handle.address, interval=0.05, count=2, out=out
                )
        assert code == 0
        assert out.getvalue().count("ripple top") == 2

    def test_run_top_unreachable_daemon_returns_one(self):
        out = io.StringIO()
        assert run_top(("127.0.0.1", 1), count=1, out=out) == 1
        assert "ripple top:" in out.getvalue()
