"""The asyncio daemon: same wire contract as the threaded backend."""

import json
import socket
import threading
import time

import pytest

from repro import obs
from repro.graph.generators import planted_kvcc_graph
from repro.resilience.faults import FaultPlan
from repro.serving import (
    KvccIndex,
    QueryEngine,
    ServeSettings,
    ShardRouter,
    serve_tcp_aio,
)
from repro.serving import chaos


@pytest.fixture(scope="module")
def graph():
    return planted_kvcc_graph(2, 12, 3, seed=9)


@pytest.fixture(autouse=True)
def disarm():
    yield
    chaos.deactivate()


def _ask(address, lines):
    with socket.create_connection(address, timeout=10) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        answers = []
        for line in lines:
            stream.write(line + "\n")
            stream.flush()
            answers.append(json.loads(stream.readline()))
        return answers


class TestWireContract:
    def test_session_in_order(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp_aio(engine, background=True) as handle:
            answers = _ask(
                handle.address,
                [
                    '{"op":"ping"}',
                    '{"op":"query","v":0,"k":3,"id":1}',
                    '{"op":"query","v":99,"k":3,"id":2}',
                ],
            )
        assert answers[0]["protocol"].startswith("repro.serve/")
        assert answers[1]["ok"] and 0 in answers[1]["components"][0]
        assert answers[1]["id"] == 1
        assert answers[2]["code"] == "unknown-vertex"

    def test_malformed_line_answers_parse_session_survives(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp_aio(engine, background=True) as handle:
            answers = _ask(handle.address, ["{nope", '{"op":"ping"}'])
        assert answers[0]["code"] == "parse"
        assert answers[1]["ok"]

    def test_oversized_line_is_drained_session_survives(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(max_line_bytes=128)
        with obs.collecting() as collector:
            with serve_tcp_aio(
                engine, settings, background=True
            ) as handle:
                huge = '{"op":"ping","pad":"' + "x" * 4096 + '"}'
                answers = _ask(handle.address, [huge, '{"op":"ping"}'])
        assert answers[0]["code"] == "bad-request"
        assert "exceeds 128 bytes" in answers[0]["error"]
        assert answers[1]["ok"]
        assert collector.counter("serving.oversized_lines") == 1

    def test_batch_and_deadline(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(request_timeout=0.0)
        with serve_tcp_aio(engine, settings, background=True) as handle:
            answers = _ask(
                handle.address,
                ['{"op":"batch","queries":[{"v":0,"k":2}]}'],
            )
        assert answers[0]["code"] == "deadline"
        assert answers[0]["results"] == []

    def test_counters_reach_the_servers_collector(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with obs.collecting() as collector:
            with serve_tcp_aio(engine, background=True) as handle:
                _ask(handle.address, ['{"op":"query","v":0,"k":2}'])
        assert collector.counter("serving.requests") == 1
        assert collector.counter("serving.queries") == 1
        assert collector.counter("serving.sessions") == 1

    def test_concurrent_connections_all_answered(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        failures: list[Exception] = []

        def client(vertex: int) -> None:
            try:
                answers = _ask(
                    handle.address,
                    [json.dumps({"op": "query", "v": vertex, "k": 3})],
                )
                assert answers[0]["ok"], answers[0]
                assert vertex in answers[0]["components"][0]
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        with serve_tcp_aio(
            engine, ServeSettings(workers=2), background=True
        ) as handle:
            threads = [
                threading.Thread(target=client, args=(vertex,))
                for vertex in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures


class TestAdmission:
    def test_sheds_when_saturated(self, graph):
        # One worker, queue of one, slow resolves: 6 concurrent
        # requests must yield exactly 2 answers and 4 sheds — the
        # bounded-admission contract, now enforced on the event loop.
        engine = QueryEngine(graph, KvccIndex.build(graph))
        original = engine.query

        def slow_query(*args, **kwargs):
            time.sleep(0.25)
            return original(*args, **kwargs)

        engine.query = slow_query
        settings = ServeSettings(workers=1, max_queue=1)
        outcomes: list[str] = []
        lock = threading.Lock()

        def client() -> None:
            answer = _ask(
                handle.address, ['{"op":"query","v":0,"k":2}']
            )[0]
            with lock:
                outcomes.append(
                    "ok" if answer.get("ok") else answer["code"]
                )

        with obs.collecting() as collector:
            with serve_tcp_aio(
                engine, settings, background=True
            ) as handle:
                threads = [
                    threading.Thread(target=client) for _ in range(6)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
        assert sorted(outcomes) == ["ok", "ok"] + ["overloaded"] * 4
        assert collector.counter("serving.shed") == 4
        assert collector.counter("serving.admitted") == 2

    def test_overloaded_answer_carries_retry_after(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        original = engine.query

        def slow_query(*args, **kwargs):
            time.sleep(0.3)
            return original(*args, **kwargs)

        engine.query = slow_query
        settings = ServeSettings(workers=1, max_queue=0, shed_policy="strict")
        with serve_tcp_aio(engine, settings, background=True) as handle:
            blocker = socket.create_connection(handle.address, timeout=10)
            stream = blocker.makefile("rw", encoding="utf-8", newline="\n")
            stream.write('{"op":"query","v":0,"k":2}\n')
            stream.flush()
            deadline = time.monotonic() + 5
            shed = None
            while time.monotonic() < deadline:
                answer = _ask(
                    handle.address, ['{"op":"query","v":1,"k":2}']
                )[0]
                if not answer.get("ok"):
                    shed = answer
                    break
            assert json.loads(stream.readline())["ok"]
            blocker.close()
        assert shed is not None and shed["code"] == "overloaded"
        assert shed["retry_after_ms"] >= 0

    def test_stats_answers_while_workers_are_busy(self, graph):
        # The control plane must never queue behind data traffic.
        engine = QueryEngine(graph, KvccIndex.build(graph))
        original = engine.query

        def slow_query(*args, **kwargs):
            time.sleep(0.5)
            return original(*args, **kwargs)

        engine.query = slow_query
        settings = ServeSettings(workers=1, max_queue=4)
        with serve_tcp_aio(engine, settings, background=True) as handle:
            busy = socket.create_connection(handle.address, timeout=10)
            stream = busy.makefile("rw", encoding="utf-8", newline="\n")
            stream.write('{"op":"query","v":0,"k":2}\n')
            stream.flush()
            started = time.monotonic()
            stats = _ask(handle.address, ['{"op":"stats"}'])[0]
            elapsed = time.monotonic() - started
            assert json.loads(stream.readline())["ok"]
            busy.close()
        assert stats["ok"] and "admission" in stats["stats"]
        assert elapsed < 0.4  # did not wait for the slow worker


class TestLifecycle:
    def test_handle_surface_matches_threaded_backend(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        handle = serve_tcp_aio(engine, background=True)
        try:
            assert handle.port == handle.address[1] > 0
            assert handle.admission.stats()["shed_policy"]
            assert handle.context is not None
        finally:
            handle.stop()
        handle.stop()  # idempotent
        handle.shutdown()  # alias

    def test_stop_unblocks_idle_sessions(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        handle = serve_tcp_aio(engine, background=True)
        idle = socket.create_connection(handle.address, timeout=10)
        stream = idle.makefile("rw", encoding="utf-8", newline="\n")
        stream.write('{"op":"ping"}\n')
        stream.flush()
        assert json.loads(stream.readline())["ok"]
        handle.stop(drain_timeout=1.0)
        assert stream.readline() == ""  # server closed the connection
        idle.close()

    def test_session_crash_chaos_drops_connection_daemon_survives(
        self, graph
    ):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        chaos.activate(FaultPlan.parse("serve.handle:0:crash"))
        with obs.collecting() as collector:
            with serve_tcp_aio(engine, background=True) as handle:
                with socket.create_connection(
                    handle.address, timeout=10
                ) as sock:
                    stream = sock.makefile(
                        "rw", encoding="utf-8", newline="\n"
                    )
                    stream.write('{"op":"ping"}\n')
                    stream.flush()
                    assert stream.readline() == ""  # EOF, no response
                answers = _ask(handle.address, ['{"op":"ping"}'])
                assert answers[0]["ok"]
        assert collector.counter("serving.sessions.crashed") == 1


class TestShardedServing:
    def test_router_behind_aio_reports_shard_gauges(self):
        sharded = planted_kvcc_graph(3, 30, 4, seed=7, bridge_width=0)
        with ShardRouter(graph=sharded, shards=3, replicas=2) as router:
            with serve_tcp_aio(router, background=True) as handle:
                answers = _ask(
                    handle.address,
                    ['{"op":"query","v":0,"k":4}', '{"op":"stats"}'],
                )
        assert answers[0]["ok"] and answers[0]["source"] == "index"
        rows = answers[1]["gauges"]["shards"]
        assert len(rows) == 3
        assert all(row["replicas"] == 2 for row in rows)
        assert answers[1]["stats"]["router"]["shards"] == 3

    def test_router_answers_match_engine_over_the_wire(self):
        sharded = planted_kvcc_graph(3, 30, 4, seed=7, bridge_width=0)
        engine = QueryEngine(
            sharded, KvccIndex.build(sharded), cache_size=0
        )
        lines = [
            json.dumps({"op": "query", "v": v, "k": k})
            for v in sorted(sharded.vertices())[::9]
            for k in (1, 2, 4)
        ]
        with ShardRouter(graph=sharded, shards=3, cache_size=0) as router:
            with serve_tcp_aio(router, background=True) as aio_handle:
                sharded_answers = _ask(aio_handle.address, lines)
        from repro.serving import serve_tcp

        with serve_tcp(engine, background=True) as thread_handle:
            engine_answers = _ask(thread_handle.address, lines)
        for mine, theirs in zip(sharded_answers, engine_answers):
            assert mine["components"] == theirs["components"]
