"""The line-delimited JSON protocol: ops, errors, ids, deadlines."""

import json

import pytest

from repro.graph.generators import planted_kvcc_graph
from repro.resilience import Deadline
from repro.serving import (
    PROTOCOL,
    KvccIndex,
    QueryEngine,
    handle_line,
    handle_request,
)


@pytest.fixture(scope="module")
def engine():
    graph = planted_kvcc_graph(2, 12, 3, seed=4)
    return QueryEngine(graph, KvccIndex.build(graph))


def _roundtrip(engine, doc):
    response, keep_serving = handle_line(engine, json.dumps(doc))
    return json.loads(response), keep_serving


class TestOps:
    def test_ping_reports_protocol(self, engine):
        response, keep_serving = _roundtrip(engine, {"op": "ping"})
        assert response == {"ok": True, "op": "ping", "protocol": PROTOCOL}
        assert keep_serving

    def test_query_sorted_components(self, engine):
        response, _ = _roundtrip(engine, {"op": "query", "v": 0, "k": 3})
        assert response["ok"] and response["op"] == "query"
        assert response["count"] == len(response["components"]) == 1
        members = response["components"][0]
        assert members == sorted(members)
        assert 0 in members
        assert response["source"] in ("index", "cache")

    def test_batch_preserves_order(self, engine):
        response, _ = _roundtrip(
            engine,
            {
                "op": "batch",
                "queries": [{"v": 0, "k": 2}, {"v": 13, "k": 3}],
            },
        )
        assert response["ok"] and response["count"] == 2
        assert [r["v"] for r in response["results"]] == [0, 13]

    def test_stats_describes_engine(self, engine):
        response, _ = _roundtrip(engine, {"op": "stats"})
        assert response["ok"]
        assert response["stats"]["index"]["complete"] is True
        assert response["stats"]["has_graph"] is True

    def test_shutdown_stops_session(self, engine):
        response, keep_serving = _roundtrip(engine, {"op": "shutdown"})
        assert response["ok"]
        assert not keep_serving

    def test_id_echoed_verbatim(self, engine):
        response, _ = _roundtrip(
            engine, {"op": "ping", "id": "req-42"}
        )
        assert response["id"] == "req-42"
        response, _ = _roundtrip(
            engine, {"op": "query", "v": 0, "k": 99, "id": 7}
        )
        assert response["id"] == 7


class TestErrors:
    def test_malformed_json_is_parse_error(self, engine):
        response, keep_serving = handle_line(engine, "{oops")
        payload = json.loads(response)
        assert payload["ok"] is False and payload["code"] == "parse"
        assert keep_serving  # the session survives bad input

    def test_non_object_request_is_parse_error(self, engine):
        payload = json.loads(handle_line(engine, "[1, 2]")[0])
        assert payload["code"] == "parse"

    def test_blank_line_is_ignored(self, engine):
        response, keep_serving = handle_line(engine, "   \n")
        assert response == "" and keep_serving

    def test_unsupported_op(self, engine):
        response, _ = _roundtrip(engine, {"op": "evict"})
        assert response["code"] == "unsupported-op"

    def test_missing_fields_are_bad_requests(self, engine):
        for doc in (
            {"op": "query"},
            {"op": "query", "v": 0},
            {"op": "query", "v": 0, "k": "three"},
            {"op": "query", "v": 0, "k": 0},
            {"op": "query", "v": True, "k": 2},
            {"op": "query", "v": [1], "k": 2},
            {"op": "batch"},
            {"op": "batch", "queries": "nope"},
            {"op": "batch", "queries": [7]},
        ):
            response, _ = _roundtrip(engine, doc)
            assert response["code"] == "bad-request", doc

    def test_unknown_vertex_has_its_own_code(self, engine):
        response, _ = _roundtrip(engine, {"op": "query", "v": 999, "k": 2})
        assert response["code"] == "unknown-vertex"

    def test_expired_deadline_returns_batch_prefix(self, engine):
        expired = Deadline(0)
        response, keep_serving = handle_request(
            engine,
            {"op": "batch", "queries": [{"v": 0, "k": 2}, {"v": 1, "k": 2}]},
            deadline=expired,
        )
        assert response["ok"] is False and response["code"] == "deadline"
        assert response["completed"] == 0 and response["total"] == 2
        assert response["results"] == []
        assert keep_serving
