"""The line-delimited JSON protocol: ops, errors, ids, deadlines."""

import io
import json
import re
import time

import pytest

from repro import obs
from repro.graph.generators import planted_kvcc_graph
from repro.obs import Collector
from repro.resilience import Deadline
from repro.serving import (
    PROTOCOL,
    AccessLog,
    AdmissionController,
    KvccIndex,
    QueryEngine,
    ServerContext,
    error_line,
    handle_line,
    handle_request,
)

#: Shape of a server-assigned request id: pid (hex) + process sequence.
SERVER_ID = re.compile(r"s-[0-9a-f]+-\d{6}")


@pytest.fixture(scope="module")
def engine():
    graph = planted_kvcc_graph(2, 12, 3, seed=4)
    return QueryEngine(graph, KvccIndex.build(graph))


def _roundtrip(engine, doc):
    response, keep_serving = handle_line(engine, json.dumps(doc))
    return json.loads(response), keep_serving


class TestOps:
    def test_ping_reports_protocol(self, engine):
        response, keep_serving = _roundtrip(engine, {"op": "ping"})
        assert response.pop("request_id")
        assert response == {"ok": True, "op": "ping", "protocol": PROTOCOL}
        assert keep_serving

    def test_query_sorted_components(self, engine):
        response, _ = _roundtrip(engine, {"op": "query", "v": 0, "k": 3})
        assert response["ok"] and response["op"] == "query"
        assert response["count"] == len(response["components"]) == 1
        members = response["components"][0]
        assert members == sorted(members)
        assert 0 in members
        assert response["source"] in ("index", "cache")

    def test_batch_preserves_order(self, engine):
        response, _ = _roundtrip(
            engine,
            {
                "op": "batch",
                "queries": [{"v": 0, "k": 2}, {"v": 13, "k": 3}],
            },
        )
        assert response["ok"] and response["count"] == 2
        assert [r["v"] for r in response["results"]] == [0, 13]

    def test_stats_describes_engine(self, engine):
        response, _ = _roundtrip(engine, {"op": "stats"})
        assert response["ok"]
        assert response["stats"]["index"]["complete"] is True
        assert response["stats"]["has_graph"] is True

    def test_shutdown_stops_session(self, engine):
        response, keep_serving = _roundtrip(engine, {"op": "shutdown"})
        assert response["ok"]
        assert not keep_serving

    def test_id_echoed_verbatim(self, engine):
        response, _ = _roundtrip(
            engine, {"op": "ping", "id": "req-42"}
        )
        assert response["id"] == "req-42"
        response, _ = _roundtrip(
            engine, {"op": "query", "v": 0, "k": 99, "id": 7}
        )
        assert response["id"] == 7


class TestErrors:
    def test_malformed_json_is_parse_error(self, engine):
        response, keep_serving = handle_line(engine, "{oops")
        payload = json.loads(response)
        assert payload["ok"] is False and payload["code"] == "parse"
        assert keep_serving  # the session survives bad input

    def test_non_object_request_is_parse_error(self, engine):
        payload = json.loads(handle_line(engine, "[1, 2]")[0])
        assert payload["code"] == "parse"

    def test_blank_line_is_ignored(self, engine):
        response, keep_serving = handle_line(engine, "   \n")
        assert response == "" and keep_serving

    def test_unsupported_op(self, engine):
        response, _ = _roundtrip(engine, {"op": "evict"})
        assert response["code"] == "unsupported-op"

    def test_missing_fields_are_bad_requests(self, engine):
        for doc in (
            {"op": "query"},
            {"op": "query", "v": 0},
            {"op": "query", "v": 0, "k": "three"},
            {"op": "query", "v": 0, "k": 0},
            {"op": "query", "v": True, "k": 2},
            {"op": "query", "v": [1], "k": 2},
            {"op": "batch"},
            {"op": "batch", "queries": "nope"},
            {"op": "batch", "queries": [7]},
        ):
            response, _ = _roundtrip(engine, doc)
            assert response["code"] == "bad-request", doc

    def test_unknown_vertex_has_its_own_code(self, engine):
        response, _ = _roundtrip(engine, {"op": "query", "v": 999, "k": 2})
        assert response["code"] == "unknown-vertex"

    def test_expired_deadline_returns_batch_prefix(self, engine):
        expired = Deadline(0)
        response, keep_serving = handle_request(
            engine,
            {"op": "batch", "queries": [{"v": 0, "k": 2}, {"v": 1, "k": 2}]},
            deadline=expired,
        )
        assert response["ok"] is False and response["code"] == "deadline"
        assert response["completed"] == 0 and response["total"] == 2
        assert response["results"] == []
        assert keep_serving


class TestRequestIds:
    def test_server_assigns_an_id_to_every_response(self, engine):
        response, _ = _roundtrip(engine, {"op": "ping"})
        assert SERVER_ID.fullmatch(response["request_id"])

    def test_server_ids_are_unique_per_request(self, engine):
        first, _ = _roundtrip(engine, {"op": "ping"})
        second, _ = _roundtrip(engine, {"op": "ping"})
        assert first["request_id"] != second["request_id"]

    def test_client_ids_round_trip_unmodified(self, engine):
        # Whatever the client sends — string, int, structured — comes
        # back byte-for-byte; the server never rewrites foreign ids.
        for request_id in ("client-42", 7, {"trace": "ab", "span": 3}):
            response, _ = _roundtrip(
                engine, {"op": "ping", "request_id": request_id}
            )
            assert response["request_id"] == request_id

    def test_error_responses_carry_the_id(self, engine):
        response, _ = _roundtrip(
            engine, {"op": "query", "request_id": "bad-1"}
        )
        assert response["code"] == "bad-request"
        assert response["request_id"] == "bad-1"

    def test_parse_errors_get_a_server_id(self, engine):
        payload = json.loads(handle_line(engine, "{oops")[0])
        assert payload["code"] == "parse"
        assert SERVER_ID.fullmatch(payload["request_id"])

    def test_shed_response_echoes_the_id(self, engine):
        admission = AdmissionController(
            workers=1, max_queue=0, shed_policy="strict"
        )
        held = admission.admit("point")  # occupy the only worker
        try:
            line, keep_serving = handle_line(
                engine,
                json.dumps(
                    {"op": "query", "v": 0, "k": 3, "request_id": "shed-me"}
                ),
                admission=admission,
            )
        finally:
            held.release()
        response = json.loads(line)
        assert response["code"] == "overloaded" and response["retriable"]
        assert response["request_id"] == "shed-me"
        assert keep_serving

    def test_error_line_assigns_or_echoes_ids(self):
        assigned = json.loads(error_line("line too long", "parse"))
        assert SERVER_ID.fullmatch(assigned["request_id"])
        echoed = json.loads(
            error_line("line too long", "parse", request_id="mine")
        )
        assert echoed["request_id"] == "mine"


class TestStatsTelemetry:
    def test_gauges_report_admission_state(self, engine):
        admission = AdmissionController(workers=2, max_queue=4)
        response, _ = handle_request(
            engine, {"op": "stats"}, admission=admission
        )
        gauges = response["gauges"]
        assert set(gauges) == {"queue_depth", "in_service", "slots_free"}
        assert gauges["slots_free"] == 2
        assert set(gauges["queue_depth"]) == {
            "point",
            "batch",
            "scan",
            "reload",
        }
        assert all(depth == 0 for depth in gauges["queue_depth"].values())

    def test_in_service_gauge_tracks_a_held_ticket(self, engine):
        admission = AdmissionController(workers=2, max_queue=4)
        with admission.admit("point"):
            response, _ = handle_request(
                engine, {"op": "stats"}, admission=admission
            )
            assert response["gauges"]["in_service"]["point"] == 1
            assert response["gauges"]["slots_free"] == 1

    def test_uptime_comes_from_the_server_context(self, engine):
        context = ServerContext(started_at=time.monotonic() - 3.0)
        response, _ = handle_request(
            engine, {"op": "stats"}, context=context
        )
        assert response["uptime_s"] >= 3.0

    def test_reset_reports_the_closing_window_then_clears(self, engine):
        collector = Collector()
        with obs.collecting(collector):
            _roundtrip(engine, {"op": "query", "v": 0, "k": 3})
            response, _ = _roundtrip(engine, {"op": "stats", "reset": True})
            assert response["reset"] is True
            # The response carries the window being closed...
            assert "serving.handle_seconds.point" in response["histograms"]
            lifetime_requests = response["counters"]["serving.requests"]
            # ...and afterwards histograms restart empty while lifetime
            # counters keep accumulating.
            follow, _ = _roundtrip(engine, {"op": "stats"})
            assert "serving.handle_seconds.point" not in follow["histograms"]
            assert (
                follow["counters"]["serving.requests"] >= lifetime_requests
            )

    def test_plain_stats_does_not_reset(self, engine):
        collector = Collector()
        with obs.collecting(collector):
            _roundtrip(engine, {"op": "query", "v": 0, "k": 3})
            response, _ = _roundtrip(engine, {"op": "stats"})
            assert "reset" not in response
            assert collector.histogram("serving.handle_seconds.point")


class TestAccessLog:
    def _context(self):
        stream = io.StringIO()
        return ServerContext(access_log=AccessLog(stream)), stream

    def _records(self, stream):
        return [json.loads(line) for line in stream.getvalue().splitlines()]

    def test_query_record_is_complete(self, engine):
        context, stream = self._context()
        admission = AdmissionController(workers=2, max_queue=4)
        handle_line(
            engine,
            json.dumps(
                {"op": "query", "v": 0, "k": 3, "request_id": "log-1"}
            ),
            admission=admission,
            context=context,
        )
        (record,) = self._records(stream)
        assert record["request_id"] == "log-1"
        assert record["op"] == "query" and record["class"] == "point"
        assert record["outcome"] == "ok"
        assert record["tier"] in ("cache", "index", "live")
        for key in ("ts", "queue_ms", "service_ms", "handle_ms"):
            assert key in record, key

    def test_parse_error_is_logged_as_control(self, engine):
        context, stream = self._context()
        handle_line(engine, "{oops", context=context)
        (record,) = self._records(stream)
        assert record["outcome"] == "parse"
        assert record["class"] == "control" and record["op"] is None
        assert SERVER_ID.fullmatch(record["request_id"])
        assert "handle_ms" in record

    def test_shed_record_names_the_reason(self, engine):
        context, stream = self._context()
        admission = AdmissionController(
            workers=1, max_queue=0, shed_policy="strict"
        )
        held = admission.admit("point")
        try:
            handle_line(
                engine,
                json.dumps(
                    {"op": "query", "v": 0, "k": 3, "request_id": "s-1"}
                ),
                admission=admission,
                context=context,
            )
        finally:
            held.release()
        (record,) = self._records(stream)
        assert record["outcome"] == "overloaded"
        assert record["shed"] == "queue-full:point"
        assert record["request_id"] == "s-1"

    def test_one_record_per_line_in_a_pipelined_session(self, engine):
        context, stream = self._context()
        for doc in (
            {"op": "ping"},
            {"op": "query", "v": 0, "k": 3},
            {"op": "stats"},
        ):
            handle_line(engine, json.dumps(doc), context=context)
        records = self._records(stream)
        assert [r["op"] for r in records] == ["ping", "query", "stats"]
        assert all(r["outcome"] == "ok" for r in records)
