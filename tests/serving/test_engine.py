"""QueryEngine: differential correctness, cache, fallback, deadlines.

The load-bearing suite is the differential one: for every vertex and
every indexed k across three generator families, batched indexed
answers must agree with direct :func:`kvcc_containing` enumeration —
including overlap vertices (several k-VCCs per level) and k above a
capped index's ceiling (live fallback).
"""

import pytest

from repro import obs
from repro.core.query import kvcc_containing
from repro.errors import ParameterError
from repro.graph.generators import (
    community_graph,
    overlapping_cliques_graph,
    planted_kvcc_graph,
)
from repro.resilience import Deadline
from repro.serving import (
    BatchDeadlineExpired,
    KvccIndex,
    LRUCache,
    QueryEngine,
)

GRAPHS = {
    "planted": planted_kvcc_graph(3, 16, 4, seed=7),
    "community": community_graph([14, 12], k=3, seed=1),
    "overlap": overlapping_cliques_graph(3, 6, overlap=2, seed=0),
}


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_batched_indexed_answers_match_direct(self, name, tmp_path):
        graph = GRAPHS[name]
        index = KvccIndex.build(graph)
        path = tmp_path / "idx.json"
        index.save(path)
        engine = QueryEngine(graph, KvccIndex.load(path))

        ks = range(2, index.ceiling + 2)  # +1 probes above the ceiling
        queries = [(v, k) for v in graph.vertices() for k in ks]
        results = engine.query_batch(queries)
        overlap_vertices = 0
        for result in results:
            direct = kvcc_containing(graph, result.vertex, result.k)
            if direct is None:
                assert result.components == ()
                assert result.best is None
            else:
                # kvcc_containing returns *one* k-VCC of the vertex; the
                # index returns all of them (overlap vertices belong to
                # up to k-1 of a level's components).
                assert direct in result.components
                if len(result.components) == 1:
                    assert result.best == direct
                else:
                    overlap_vertices += 1
        if name == "overlap":
            assert overlap_vertices > 0, "overlap family must exercise overlap"

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_above_ceiling_fallback_matches_direct(self, name):
        graph = GRAPHS[name]
        engine = QueryEngine(graph, KvccIndex.build(graph, max_k=2))
        for vertex in graph.vertices():
            result = engine.query(vertex, 3)
            assert result.source == "live"
            direct = kvcc_containing(graph, vertex, 3)
            if direct is None:
                assert result.components == ()
            else:
                assert result.components == (direct,)


class TestEngineBasics:
    def test_build_on_first_use(self):
        graph = GRAPHS["planted"]
        engine = QueryEngine(graph)
        assert engine.index is None
        with obs.collecting() as collector:
            result = engine.query(0, 2)
        assert result.source == "index"
        assert engine.index is not None
        assert collector.counter("serving.index.builds") == 1
        # second query reuses the built index
        with obs.collecting() as collector:
            engine.query(1, 2)
        assert collector.counter("serving.index.builds") == 0

    def test_stale_index_rebuilt_against_graph(self):
        graph = GRAPHS["planted"]
        index = KvccIndex.build(graph)
        edited = graph.copy()
        u = next(iter(edited.vertices()))
        v = next(
            w for w in edited.vertices()
            if w != u and not edited.has_edge(u, w)
        )
        edited.add_edge(u, v)
        engine = QueryEngine(edited, index)
        with obs.collecting() as collector:
            engine.query(u, 2)
        assert collector.counter("serving.index.stale_rebuilds") == 1
        assert not engine.index.is_stale(edited)

    def test_index_only_engine_rejects_uncovered_k(self):
        index = KvccIndex.build(GRAPHS["planted"], max_k=2)
        engine = QueryEngine(index=index)
        assert engine.query(0, 2).source == "index"
        with pytest.raises(ParameterError):
            engine.query(0, 3)

    def test_complete_index_answers_any_k_without_graph(self):
        index = KvccIndex.build(GRAPHS["planted"])
        engine = QueryEngine(index=index)
        assert engine.query(0, index.ceiling + 50).components == ()

    def test_unknown_vertex_and_bad_k_raise(self):
        engine = QueryEngine(GRAPHS["planted"])
        with pytest.raises(ParameterError):
            engine.query("ghost", 2)
        with pytest.raises(ParameterError):
            engine.query(0, 0)
        with pytest.raises(ParameterError):
            QueryEngine()

    def test_k_equals_one_matches_connected_component(self):
        graph = GRAPHS["community"]
        engine = QueryEngine(graph)
        result = engine.query(0, 1)
        assert len(result.components) == 1
        assert 0 in result.components[0]

    def test_serving_counters_flow(self):
        engine = QueryEngine(GRAPHS["planted"], cache_size=8)
        with obs.collecting() as collector:
            engine.query_batch([(0, 2), (0, 2), (1, 2)])
        assert collector.counter("serving.queries") == 3
        assert collector.counter("serving.batches") == 1
        assert collector.counter("serving.cache.hits") == 1
        assert collector.counter("serving.cache.misses") == 2
        assert collector.counter("serving.index.hits") == 2


class TestCache:
    def test_cached_answers_are_identical(self):
        graph = GRAPHS["overlap"]
        engine = QueryEngine(graph, cache_size=64)
        first = engine.query(0, 3)
        second = engine.query(0, 3)
        assert second.source == "cache"
        assert second.components == first.components

    def test_capacity_zero_disables(self):
        engine = QueryEngine(GRAPHS["planted"], cache_size=0)
        engine.query(0, 2)
        assert engine.query(0, 2).source == "index"

    def test_lru_eviction_order(self):
        with obs.collecting() as collector:
            cache = LRUCache(2)
            cache.put("a", (1,))
            cache.put("b", (2,))
            assert cache.get("a") == (1,)  # refreshes "a"
            cache.put("c", (3,))  # evicts "b", the least recent
            assert cache.get("b") is None
            assert cache.get("a") == (1,)
            assert cache.get("c") == (3,)
        assert collector.counter("serving.cache.evictions") == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ParameterError):
            LRUCache(-1)


class TestDeadlines:
    def _expiring_after(self, checks: int) -> Deadline:
        ticks = iter(range(1000))

        def clock() -> float:
            return 0.0 if next(ticks) < checks else 100.0

        return Deadline(1.0, clock=clock)

    def test_batch_deadline_carries_completed_prefix(self):
        engine = QueryEngine(GRAPHS["planted"])
        engine.query(0, 2)  # pre-build the index
        queries = [(v, 2) for v in range(6)]
        # first expired() call is check #2 (construction consumes #1)
        deadline = self._expiring_after(4)
        with pytest.raises(BatchDeadlineExpired) as excinfo:
            engine.query_batch(queries, deadline=deadline)
        assert excinfo.value.total == 6
        completed = excinfo.value.completed
        assert 0 < len(completed) < 6
        for result in completed:
            assert result.k == 2

    def test_unexpired_deadline_is_harmless(self):
        engine = QueryEngine(GRAPHS["planted"])
        results = engine.query_batch(
            [(0, 2), (1, 2)], deadline=Deadline(1000)
        )
        assert len(results) == 2
