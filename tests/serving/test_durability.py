"""Crash-safe index persistence and the versioned reload swap."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import obs
from repro.errors import IndexCorruptionError, ParseError
from repro.graph.adjacency import Graph
from repro.graph.generators import planted_kvcc_graph
from repro.resilience.faults import FaultInjected, FaultPlan
from repro.serving import KvccIndex, QueryEngine
from repro.serving import chaos

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def graph():
    return planted_kvcc_graph(2, 10, 3, seed=11)


@pytest.fixture(autouse=True)
def disarm():
    yield
    chaos.deactivate()


class TestChecksum:
    def test_document_carries_a_verifiable_checksum(self, graph):
        index = KvccIndex.build(graph)
        payload = json.loads(index.to_json())
        assert len(payload["checksum"]) == 64
        # save -> load -> save is still byte-identical with the checksum.
        assert KvccIndex.from_json(index.to_json()).to_json() == (
            index.to_json()
        )

    def test_tampered_payload_fails_the_checksum(self, graph):
        document = KvccIndex.build(graph).to_json()
        tampered = document.replace('"complete":true', '"complete":false')
        assert tampered != document  # the uncapped build is complete
        with pytest.raises(ParseError, match="checksum mismatch"):
            KvccIndex.from_json(tampered)

    def test_legacy_document_without_checksum_still_loads(self, graph):
        index = KvccIndex.build(graph)
        payload = json.loads(index.to_json())
        del payload["checksum"]
        legacy = json.dumps(payload, separators=(",", ":"))
        loaded = KvccIndex.from_json(legacy)
        assert loaded.fingerprint == index.fingerprint


class TestQuarantine:
    def test_torn_file_is_quarantined(self, graph, tmp_path):
        path = tmp_path / "g.idx.json"
        index = KvccIndex.build(graph)
        index.save(path)
        document = path.read_text(encoding="utf-8")
        path.write_text(document[: len(document) // 2], encoding="utf-8")
        with obs.collecting() as collector:
            with pytest.raises(IndexCorruptionError) as excinfo:
                KvccIndex.load(path)
        assert excinfo.value.quarantine == f"{path}.corrupt"
        assert not path.exists()
        assert (tmp_path / "g.idx.json.corrupt").exists()
        assert collector.counter("serving.index.quarantined") == 1

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            KvccIndex.load(tmp_path / "never.idx.json")

    def test_injected_garbage_save_quarantines_on_next_load(
        self, graph, tmp_path
    ):
        path = tmp_path / "g.idx.json"
        index = KvccIndex.build(graph)
        chaos.activate(FaultPlan.parse("index.save:0:garbage"))
        index.save(path)
        chaos.deactivate()
        with pytest.raises(IndexCorruptionError):
            KvccIndex.load(path)
        assert (tmp_path / "g.idx.json.corrupt").exists()

    def test_injected_load_garbage_leaves_the_file_alone(
        self, graph, tmp_path
    ):
        path = tmp_path / "g.idx.json"
        KvccIndex.build(graph).save(path)
        chaos.activate(FaultPlan.parse("index.load:0:garbage"))
        with pytest.raises(IndexCorruptionError) as excinfo:
            KvccIndex.load(path)
        assert excinfo.value.quarantine is None
        assert path.exists()  # intact state is never quarantined
        chaos.deactivate()
        assert KvccIndex.load(path).fingerprint  # loads fine unfaulted

    def test_injected_save_raise_cleans_up_its_temp_file(
        self, graph, tmp_path
    ):
        path = tmp_path / "g.idx.json"
        chaos.activate(FaultPlan.parse("index.save:0:raise"))
        with pytest.raises(FaultInjected):
            KvccIndex.build(graph).save(path)
        assert list(tmp_path.iterdir()) == []

    def test_engine_degrades_after_corrupt_index(self, graph, tmp_path):
        path = tmp_path / "g.idx.json"
        KvccIndex.build(graph).save(path)
        document = path.read_text(encoding="utf-8")
        path.write_text(document[:40], encoding="utf-8")
        with pytest.raises(IndexCorruptionError):
            KvccIndex.load(path)
        # The daemon's degrade path: no index, build from the graph.
        engine = QueryEngine(graph)
        assert engine.query(0, 2).source == "index"


class TestKillMidSave:
    def test_sigkill_during_save_never_torns_the_index(
        self, graph, tmp_path
    ):
        """A hard process death mid-save leaves the previous file whole.

        The subprocess saves once cleanly, then re-saves with an armed
        ``index.save:1:crash`` fault — ``os._exit(1)`` after half the
        temp-file bytes, before the atomic rename. The survivor on disk
        must still be the first save, byte-for-byte loadable.
        """
        path = tmp_path / "killed.idx.json"
        script = (
            "from repro.graph.adjacency import Graph\n"
            "from repro.serving import KvccIndex\n"
            "g = Graph.from_edges("
            "[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])\n"
            "index = KvccIndex.build(g)\n"
            f"index.save({os.fspath(path)!r})\n"
            f"index.save({os.fspath(path)!r})\n"
            "raise SystemExit(99)  # unreachable: the save crashes\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["REPRO_FAULT"] = "index.save:1:crash"
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 1, result.stderr
        loaded = KvccIndex.load(path)
        reference = KvccIndex.build(
            Graph.from_edges(
                [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
            )
        )
        assert loaded.to_json() == reference.to_json()
        # The only other thing on disk is the crash's inert temp file.
        others = sorted(p.name for p in tmp_path.iterdir())
        assert path.name in others
        assert all(
            name == path.name or name.endswith(".tmp") for name in others
        )


class TestReloadSwap:
    def _engines_graphs(self):
        small = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        big = Graph.from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1), (3, 2)]
        )
        return small, big

    def test_version_moves_forward_on_every_swap(self):
        small, big = self._engines_graphs()
        engine = QueryEngine(small, KvccIndex.build(small))
        assert engine.version == 1
        engine.reload(big)
        assert engine.version == 2
        engine.reload(small)
        assert engine.version == 3

    def test_failed_swap_leaves_the_old_generation_serving(self):
        small, big = self._engines_graphs()
        engine = QueryEngine(small, KvccIndex.build(small))
        before_index = engine.index
        before_version = engine.version
        chaos.activate(FaultPlan.parse("reload.swap:0:raise"))
        with pytest.raises(FaultInjected):
            engine.reload(big)
        chaos.deactivate()
        assert engine.index is before_index
        assert engine.version == before_version
        assert engine.query(0, 2).components  # still answering

    def test_queries_racing_reloads_never_see_a_half_swapped_index(self):
        """The regression the versioned swap exists for.

        Workers hammer (0, 2) while the main thread flips the served
        graph between two topologies. Every answer must be exactly the
        answer of one complete generation — the triangle's {0,1,2} or
        the K4's {0,1,2,3} — and the version only moves forward.
        """
        small, big = self._engines_graphs()
        expected = {
            frozenset({0, 1, 2}),
            frozenset({0, 1, 2, 3}),
        }
        engine = QueryEngine(small, KvccIndex.build(small))
        stop = threading.Event()
        failures: list[str] = []
        versions: list[int] = []

        def worker():
            last_version = 0
            while not stop.is_set():
                version = engine.version
                result = engine.query(0, 2)
                if set(result.components) - expected:
                    failures.append(f"mixed answer: {result.components}")
                if version < last_version:
                    failures.append(
                        f"version went backwards: {version}"
                    )
                last_version = version

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(6):
                engine.reload(big)
                versions.append(engine.version)
                engine.reload(small)
                versions.append(engine.version)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)  # strictly monotone
