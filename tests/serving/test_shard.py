"""Sharded serving: partitioner, manifest, router differential + edges."""

import json

import pytest

from repro import obs
from repro.errors import IndexCorruptionError, ParameterError
from repro.graph.generators import planted_kvcc_graph
from repro.resilience import Deadline
from repro.serving import (
    BatchDeadlineExpired,
    KvccIndex,
    QueryEngine,
    SHARD_SCHEMA,
    ShardRouter,
    ShardSet,
)
from repro.serving.shard import core_partition, pack_groups


@pytest.fixture(scope="module")
def graph():
    # Three *disconnected* planted communities (bridge_width=0): three
    # 2-core components, so a 3-shard build genuinely spreads them.
    return planted_kvcc_graph(3, 30, 4, seed=7, bridge_width=0)


@pytest.fixture(scope="module")
def oracle(graph):
    """The monolithic engine the router must match byte-for-byte."""
    return QueryEngine(graph, KvccIndex.build(graph), cache_size=0)


class TestPartitioner:
    def test_groups_are_core_components_largest_first(self, graph):
        groups = core_partition(graph, shard_k=2)
        assert len(groups) == 3
        assert [len(g) for g in groups] == sorted(
            (len(g) for g in groups), reverse=True
        )
        covered = set()
        for group in groups:
            assert not covered & group  # disjoint
            covered |= group

    def test_partition_is_deterministic(self, graph):
        assert core_partition(graph) == core_partition(graph)
        assert pack_groups(core_partition(graph), 2) == pack_groups(
            core_partition(graph), 2
        )

    def test_shard_k_below_two_rejected(self, graph):
        with pytest.raises(ParameterError):
            core_partition(graph, shard_k=1)

    def test_packing_balances_vertex_counts(self, graph):
        groups = core_partition(graph)
        assignment = pack_groups(groups, 2)
        loads = [
            sum(len(groups[i]) for i in bucket) for bucket in assignment
        ]
        # Three ~30-vertex groups over two bins: 2-vs-1 split.
        assert sorted(len(b) for b in assignment) == [1, 2]
        assert max(loads) <= 2 * min(loads) + max(map(len, groups))

    def test_no_group_spans_shards(self, graph):
        # The shard-key correctness fact, checked directly: every
        # shard_k-core component lands wholly inside one shard.
        shard_set = ShardSet.build(graph, 3)
        owners = shard_set.owner_map()
        for group in core_partition(graph):
            assert len({owners[v] for v in group}) == 1


class TestShardSet:
    def test_build_counts_and_shapes(self, graph):
        with obs.collecting() as collector:
            shard_set = ShardSet.build(graph, 3)
        assert collector.counter("serving.shard.builds") == 1
        assert collector.counter("serving.shard.groups") == 3
        assert shard_set.num_shards == 3
        assert shard_set.num_vertices == graph.num_vertices
        assert shard_set.residual.ceiling == 1
        assert shard_set.complete and shard_set.covers(1)
        assert shard_set.covers(shard_set.ceiling)

    def test_max_k_below_shard_k_rejected(self, graph):
        with pytest.raises(ParameterError):
            ShardSet.build(graph, 2, shard_k=3, max_k=2)

    def test_more_shards_than_groups_leaves_empty_shards(self, graph):
        shard_set = ShardSet.build(graph, 5)
        sizes = sorted(s.num_vertices for s in shard_set.shards)
        assert sizes[:2] == [0, 0]  # 3 groups into 5 bins
        assert sum(sizes) == sum(
            len(g) for g in core_partition(graph)
        )

    def test_save_load_round_trip(self, graph, tmp_path):
        shard_set = ShardSet.build(graph, 2)
        path = tmp_path / "g.shards.json"
        with obs.collecting() as collector:
            shard_set.save(path)
            loaded = ShardSet.load(path)
        assert collector.counter("serving.shard.saves") == 1
        assert collector.counter("serving.shard.loads") == 1
        assert loaded.fingerprint == shard_set.fingerprint
        assert loaded.shard_k == shard_set.shard_k
        assert loaded.num_shards == shard_set.num_shards
        for mine, theirs in zip(shard_set.shards, loaded.shards):
            assert mine.fingerprint == theirs.fingerprint
            assert mine.ceiling == theirs.ceiling
        siblings = sorted(p.name for p in tmp_path.iterdir())
        assert siblings == [
            "g.shards.json",
            "g.shards.residual.json",
            "g.shards.shard00.json",
            "g.shards.shard01.json",
        ]

    def test_corrupt_manifest_is_quarantined(self, graph, tmp_path):
        shard_set = ShardSet.build(graph, 2)
        path = tmp_path / "g.shards.json"
        shard_set.save(path)
        payload = json.loads(path.read_text())
        payload["shard_k"] = 99  # break the checksummed core
        path.write_text(json.dumps(payload))
        with obs.collecting() as collector:
            with pytest.raises(IndexCorruptionError) as excinfo:
                ShardSet.load(path)
        assert collector.counter("serving.index.quarantined") == 1
        assert excinfo.value.quarantine == f"{path}.corrupt"
        assert not path.exists()
        assert (tmp_path / "g.shards.json.corrupt").exists()

    def test_swapped_shard_file_is_rejected(self, graph, tmp_path):
        shard_set = ShardSet.build(graph, 2)
        path = tmp_path / "g.shards.json"
        shard_set.save(path)
        # Swap shard00 for shard01's bytes: the per-member checksum in
        # the manifest must catch the substitution.
        shard0 = tmp_path / "g.shards.shard00.json"
        shard1 = tmp_path / "g.shards.shard01.json"
        shard0.write_text(shard1.read_text())
        with pytest.raises(IndexCorruptionError) as excinfo:
            ShardSet.load(path)
        assert excinfo.value.quarantine is None  # manifest itself is fine
        assert path.exists()

    def test_schema_constant_matches_manifest(self, graph, tmp_path):
        path = tmp_path / "g.shards.json"
        ShardSet.build(graph, 1).save(path)
        assert json.loads(path.read_text())["schema"] == SHARD_SCHEMA
        assert SHARD_SCHEMA == "repro.kvcc-shards/1"


class TestDifferential:
    """The acceptance gate: N-shard answers byte-identical to one engine."""

    def _routers(self, graph, request):
        for shards, replicas in ((1, 1), (3, 1), (3, 2)):
            router = ShardRouter(
                graph=graph, shards=shards, replicas=replicas, cache_size=0
            )
            request.addfinalizer(router.close)
            yield router

    def test_every_vertex_every_k_matches(self, graph, oracle, request):
        ceiling = oracle.ensure_index().ceiling
        for router in self._routers(graph, request):
            for vertex in sorted(graph.vertices()):
                for k in range(1, ceiling + 1):
                    mine = router.query(vertex, k)
                    theirs = oracle.query(vertex, k)
                    assert mine.components == theirs.components, (
                        router.num_shards,
                        vertex,
                        k,
                    )
                    assert mine.source == theirs.source

    def test_unknown_vertex_message_is_identical(self, graph, request):
        for router in self._routers(graph, request):
            with pytest.raises(ParameterError) as excinfo:
                router.query("nope", 2)
            assert "vertex 'nope' not in the served graph" in str(
                excinfo.value
            )

    def test_batch_matches_in_request_order(self, graph, oracle, request):
        vertices = sorted(graph.vertices())
        pairs = [(vertices[i * 7 % len(vertices)], 1 + i % 5)
                 for i in range(40)]
        expected = oracle.query_batch(pairs)
        for router in self._routers(graph, request):
            answers = router.query_batch(pairs)
            assert [
                (a.vertex, a.k, a.components) for a in answers
            ] == [(e.vertex, e.k, e.components) for e in expected]

    def test_batch_fans_out_across_shards(self, graph):
        vertices = sorted(graph.vertices())
        pairs = [(v, 4) for v in vertices[::5]]
        with ShardRouter(graph=graph, shards=3, cache_size=0) as router:
            with obs.collecting() as collector:
                router.query_batch(pairs)
            assert collector.counter("serving.router.fanouts") == 1
            assert collector.counter("serving.router.fanout_width") == 3
            assert collector.counter("serving.batches") == 1


class TestRouterEdges:
    def test_boundary_vertex_stable_across_mutation_free_rebuild(
        self, graph, oracle
    ):
        # A vertex right on a shard boundary (its community is wholly
        # one shard; the *graph* is unchanged) must answer identically
        # before and after a reload of the same graph.
        with ShardRouter(graph=graph, shards=3, replicas=2) as router:
            probe = next(iter(router.shard_set.shards[1].vertices))
            before = router.query(probe, 4)
            version = router.version
            with obs.collecting() as collector:
                router.reload(graph)  # mutation-free: same fingerprint
            assert collector.counter("serving.router.reloads") == 1
            assert collector.counter("serving.index.stale_rebuilds") == 0
            after = router.query(probe, 4)
            assert router.version == version + 1
            assert after.components == before.components
            assert (
                after.components
                == oracle.query(probe, 4).components
            )

    def test_reload_warms_the_new_generation_caches(self, graph):
        with ShardRouter(graph=graph, shards=3, cache_size=64) as router:
            for vertex in sorted(graph.vertices())[:10]:
                router.query(vertex, 4)
            with obs.collecting() as collector:
                router.reload(graph)
            warmed = collector.counter("serving.shard.warmed_keys")
            assert warmed >= 10
            # The warmed keys landed in the *new* replicas' caches.
            assert router.stats()["cache"]["entries"] >= warmed

    def test_batch_deadline_mid_fanout_keeps_completed_prefix(
        self, graph, oracle
    ):
        # A clock that expires the deadline after a few checks: the
        # fan-out must stop, and the exception must carry the longest
        # contiguous completed prefix (the engine's own contract).
        vertices = sorted(graph.vertices())
        pairs = [(v, 4) for v in vertices[::3]]
        ticks = iter(range(1000))

        def clock():
            return 0.0 if next(ticks) < 4 else 99.0

        with ShardRouter(graph=graph, shards=3, cache_size=0) as router:
            with obs.collecting() as collector:
                with pytest.raises(BatchDeadlineExpired) as excinfo:
                    router.query_batch(
                        pairs, deadline=Deadline(1.0, clock=clock)
                    )
            assert (
                collector.counter("serving.deadline_expirations") == 1
            )
        exc = excinfo.value
        assert exc.total == len(pairs)
        assert len(exc.completed) < len(pairs)
        expected = oracle.query_batch(pairs[: len(exc.completed)])
        assert [r.components for r in exc.completed] == [
            r.components for r in expected
        ]

    def test_replica_down_fails_over_and_counts(self, graph):
        with ShardRouter(graph=graph, shards=1, replicas=2) as router:
            broken = router._replicas[0][0]

            def explode(*args, **kwargs):
                raise RuntimeError("replica fell over")

            broken.engine.query = explode
            probe = sorted(graph.vertices())[0]
            with obs.collecting() as collector:
                # Round-robin guarantees the broken replica is offered
                # the request at least once over two queries.
                first = router.query(probe, 4)
                second = router.query(probe, 4)
            assert first.components and second.components
            assert (
                collector.counter("serving.router.replica_failovers") >= 1
            )
            # The failed replica was demoted; later traffic skips it.
            assert broken.healthy is False
            stats = router.stats()
            assert stats["shards"][0]["replicas_up"] == 1
            router.set_replica_health(0, 0, True)
            assert router.stats()["shards"][0]["replicas_up"] == 2

    def test_all_replicas_down_surfaces_the_error(self, graph):
        with ShardRouter(graph=graph, shards=1, replicas=1) as router:
            def explode(*args, **kwargs):
                raise RuntimeError("no replicas left")

            router._replicas[0][0].engine.query = explode
            probe = sorted(graph.vertices())[0]
            with pytest.raises(RuntimeError, match="no replicas left"):
                router.query(probe, 4)

    def test_empty_shard_serves_nothing_but_stays_healthy(self, graph):
        # 5 bins for 3 groups: two shards are empty. Queries never
        # route to them, and stats still report them as up.
        with ShardRouter(graph=graph, shards=5) as router:
            empties = [
                row
                for row in router.stats()["shards"]
                if row["num_vertices"] == 0
            ]
            assert len(empties) == 2
            assert all(row["replicas_up"] == 1 for row in empties)
            for vertex in sorted(graph.vertices())[:5]:
                assert router.query(vertex, 4).components

    def test_unowned_vertex_answers_empty_from_index(self, graph):
        # Vertices the shard_k-core peeled away belong to no k-VCC at
        # k >= shard_k: the router answers empty without any shard.
        g = graph.copy()
        g.add_edge(999999, sorted(graph.vertices())[0])
        with ShardRouter(graph=g, shards=2) as router:
            with obs.collecting() as collector:
                result = router.query(999999, 3)
            assert result.components == ()
            assert result.source == "index"
            assert collector.counter("serving.router.unowned") == 1
            # Below shard_k the residual still answers it.
            low = router.query(999999, 1)
            assert low.components and 999999 in low.components[0]

    def test_point_queries_route_to_exactly_one_shard(self, graph):
        with ShardRouter(graph=graph, shards=3, cache_size=0) as router:
            probe = sorted(graph.vertices())[0]
            with obs.collecting() as collector:
                router.query(probe, 4)
            assert collector.counter("serving.router.point_routed") == 1
            touched = [
                name
                for name in collector.histogram_snapshots()
                if name.startswith("serving.shard.handle_seconds.")
            ]
            assert len(touched) == 1

    def test_stats_shape_is_engine_compatible(self, graph):
        with ShardRouter(graph=graph, shards=2, replicas=2) as router:
            stats = router.stats()
        assert stats["version"] == 1
        assert stats["has_graph"] is True
        assert set(stats["router"]) == {
            "shards",
            "replicas",
            "shard_k",
            "fanout",
            "residual_ceiling",
        }
        for row in stats["shards"]:
            assert row["replicas"] == 2 and row["replicas_up"] == 2
            assert row["queue_depth"] == 0 and row["in_service"] == 0
