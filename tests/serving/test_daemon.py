"""The serve daemon: stdio sessions, concurrent TCP, degradation."""

import io
import json
import socket
import threading

import pytest

from repro import obs
from repro.graph.generators import planted_kvcc_graph
from repro.serving import (
    KvccIndex,
    QueryEngine,
    ServeSettings,
    serve_stdio,
    serve_tcp,
)


@pytest.fixture(scope="module")
def graph():
    return planted_kvcc_graph(2, 12, 3, seed=9)


def _session(out: str) -> list[dict]:
    return [json.loads(line) for line in out.splitlines()]


class TestStdio:
    def _serve(self, engine, text, settings=ServeSettings()):
        out = io.StringIO()
        served = serve_stdio(
            engine,
            settings,
            in_stream=io.StringIO(text),
            out_stream=out,
        )
        return served, _session(out.getvalue())

    def test_session_in_order(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        served, responses = self._serve(
            engine,
            '{"op":"ping"}\n'
            '{"op":"query","v":0,"k":3,"id":1}\n'
            "\n"
            '{"op":"query","v":99,"k":3,"id":2}\n',
        )
        assert served == 3
        assert [r.get("id") for r in responses] == [None, 1, 2]
        assert responses[0]["protocol"].startswith("repro.serve/")
        assert responses[1]["ok"] and 0 in responses[1]["components"][0]
        assert responses[2]["code"] == "unknown-vertex"

    def test_shutdown_ends_before_eof(self, graph):
        engine = QueryEngine(graph)
        served, responses = self._serve(
            engine,
            '{"op":"shutdown"}\n{"op":"ping"}\n',
        )
        assert served == 1
        assert responses[0]["op"] == "shutdown"

    def test_missing_index_degrades_to_build_on_first_use(self, graph):
        engine = QueryEngine(graph)  # no index at all
        with obs.collecting() as collector:
            served, responses = self._serve(
                engine, '{"op":"query","v":0,"k":2}\n'
            )
        assert responses[0]["ok"] and responses[0]["source"] == "index"
        assert collector.counter("serving.index.builds") == 1

    def test_request_timeout_applies_per_request(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        served, responses = self._serve(
            engine,
            '{"op":"batch","queries":[{"v":0,"k":2}]}\n',
            ServeSettings(request_timeout=0.0),
        )
        assert responses[0]["code"] == "deadline"
        assert responses[0]["results"] == []


class TestTcp:
    def _ask(self, address, lines):
        with socket.create_connection(address, timeout=10) as sock:
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            answers = []
            for line in lines:
                stream.write(line + "\n")
                stream.flush()
                answers.append(json.loads(stream.readline()))
            return answers

    def test_serves_and_shuts_down(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp(engine, background=True) as handle:
            answers = self._ask(
                handle.address,
                ['{"op":"ping"}', '{"op":"query","v":3,"k":3}'],
            )
            assert answers[0]["ok"] and answers[1]["ok"]
            assert 3 in answers[1]["components"][0]

    def test_concurrent_connections_all_answered(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(workers=2)
        failures: list[Exception] = []

        def client(vertex: int) -> None:
            try:
                answers = self._ask(
                    handle.address,
                    [json.dumps({"op": "query", "v": vertex, "k": 3})],
                )
                assert answers[0]["ok"], answers[0]
                assert vertex in answers[0]["components"][0]
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        with serve_tcp(engine, settings, background=True) as handle:
            threads = [
                threading.Thread(target=client, args=(vertex,))
                for vertex in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures

    def test_counters_reach_the_servers_collector(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with obs.collecting() as collector:
            with serve_tcp(engine, background=True) as handle:
                self._ask(handle.address, ['{"op":"query","v":0,"k":2}'])
        assert collector.counter("serving.requests") == 1
        assert collector.counter("serving.queries") == 1
        assert collector.counter("serving.sessions") == 1

    def test_session_survives_malformed_line(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp(engine, background=True) as handle:
            answers = self._ask(
                handle.address, ["{nope", '{"op":"ping"}']
            )
            assert answers[0]["code"] == "parse"
            assert answers[1]["ok"]
