"""The serve daemon: stdio sessions, concurrent TCP, degradation."""

import io
import json
import socket
import threading
import time

import pytest

from repro import obs
from repro.graph.generators import planted_kvcc_graph
from repro.serving import (
    KvccIndex,
    QueryEngine,
    ServeSettings,
    serve_stdio,
    serve_tcp,
)


@pytest.fixture(scope="module")
def graph():
    return planted_kvcc_graph(2, 12, 3, seed=9)


def _session(out: str) -> list[dict]:
    return [json.loads(line) for line in out.splitlines()]


class TestStdio:
    def _serve(self, engine, text, settings=ServeSettings()):
        out = io.StringIO()
        served = serve_stdio(
            engine,
            settings,
            in_stream=io.StringIO(text),
            out_stream=out,
        )
        return served, _session(out.getvalue())

    def test_session_in_order(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        served, responses = self._serve(
            engine,
            '{"op":"ping"}\n'
            '{"op":"query","v":0,"k":3,"id":1}\n'
            "\n"
            '{"op":"query","v":99,"k":3,"id":2}\n',
        )
        assert served == 3
        assert [r.get("id") for r in responses] == [None, 1, 2]
        assert responses[0]["protocol"].startswith("repro.serve/")
        assert responses[1]["ok"] and 0 in responses[1]["components"][0]
        assert responses[2]["code"] == "unknown-vertex"

    def test_shutdown_ends_before_eof(self, graph):
        engine = QueryEngine(graph)
        served, responses = self._serve(
            engine,
            '{"op":"shutdown"}\n{"op":"ping"}\n',
        )
        assert served == 1
        assert responses[0]["op"] == "shutdown"

    def test_missing_index_degrades_to_build_on_first_use(self, graph):
        engine = QueryEngine(graph)  # no index at all
        with obs.collecting() as collector:
            served, responses = self._serve(
                engine, '{"op":"query","v":0,"k":2}\n'
            )
        assert responses[0]["ok"] and responses[0]["source"] == "index"
        assert collector.counter("serving.index.builds") == 1

    def test_request_timeout_applies_per_request(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        served, responses = self._serve(
            engine,
            '{"op":"batch","queries":[{"v":0,"k":2}]}\n',
            ServeSettings(request_timeout=0.0),
        )
        assert responses[0]["code"] == "deadline"
        assert responses[0]["results"] == []


class TestTcp:
    def _ask(self, address, lines):
        with socket.create_connection(address, timeout=10) as sock:
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            answers = []
            for line in lines:
                stream.write(line + "\n")
                stream.flush()
                answers.append(json.loads(stream.readline()))
            return answers

    def test_serves_and_shuts_down(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp(engine, background=True) as handle:
            answers = self._ask(
                handle.address,
                ['{"op":"ping"}', '{"op":"query","v":3,"k":3}'],
            )
            assert answers[0]["ok"] and answers[1]["ok"]
            assert 3 in answers[1]["components"][0]

    def test_concurrent_connections_all_answered(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(workers=2)
        failures: list[Exception] = []

        def client(vertex: int) -> None:
            try:
                answers = self._ask(
                    handle.address,
                    [json.dumps({"op": "query", "v": vertex, "k": 3})],
                )
                assert answers[0]["ok"], answers[0]
                assert vertex in answers[0]["components"][0]
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        with serve_tcp(engine, settings, background=True) as handle:
            threads = [
                threading.Thread(target=client, args=(vertex,))
                for vertex in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures

    def test_counters_reach_the_servers_collector(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with obs.collecting() as collector:
            with serve_tcp(engine, background=True) as handle:
                self._ask(handle.address, ['{"op":"query","v":0,"k":2}'])
        assert collector.counter("serving.requests") == 1
        assert collector.counter("serving.queries") == 1
        assert collector.counter("serving.sessions") == 1

    def test_concurrent_recording_keeps_histograms_consistent(self, graph):
        # N sessions hammer the daemon in parallel; afterwards the
        # merged serving.handle_seconds family must account for every
        # request exactly once — no torn snapshots, no lost updates.
        from repro.obs.histogram import Histogram

        engine = QueryEngine(graph, KvccIndex.build(graph))
        clients, per_client = 8, 25
        failures: list[Exception] = []

        def client(seed: int) -> None:
            try:
                lines = [
                    json.dumps({"op": "query", "v": (seed + i) % 24, "k": 3})
                    for i in range(per_client)
                ]
                answers = self._ask(handle.address, lines)
                assert all(a["ok"] for a in answers)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        with obs.collecting() as collector:
            with serve_tcp(
                engine, ServeSettings(workers=4), background=True
            ) as handle:
                threads = [
                    threading.Thread(target=client, args=(n,))
                    for n in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
        assert not failures
        merged = Histogram()
        for name, snapshot in collector.histogram_snapshots().items():
            if name.startswith("serving.handle_seconds."):
                merged.merge(snapshot)
        assert merged.count == clients * per_client
        assert collector.counter("serving.queries") == clients * per_client

    def test_session_survives_malformed_line(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp(engine, background=True) as handle:
            answers = self._ask(
                handle.address, ["{nope", '{"op":"ping"}']
            )
            assert answers[0]["code"] == "parse"
            assert answers[1]["ok"]


class TestStopAndDrain:
    def test_handle_exposes_the_ephemeral_port(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        handle = serve_tcp(engine, background=True)
        try:
            assert handle.port == handle.address[1] > 0
        finally:
            handle.stop()

    def test_stop_unblocks_idle_sessions_and_leaves_no_threads(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        handle = serve_tcp(engine, background=True)
        # Two sessions: one idle (parked in readline), one that has
        # already completed a request and is waiting for the next line.
        idle = socket.create_connection(handle.address, timeout=10)
        active = socket.create_connection(handle.address, timeout=10)
        stream = active.makefile("rw", encoding="utf-8", newline="\n")
        stream.write('{"op":"ping"}\n')
        stream.flush()
        assert json.loads(stream.readline())["ok"]
        give_up = time.monotonic() + 10
        while (
            len(handle._server.live_sessions()) < 2
            and time.monotonic() < give_up
        ):
            time.sleep(0.01)
        sessions = [t for t, _ in handle._server.live_sessions()]
        assert len(sessions) == 2
        handle.stop(drain_timeout=0.5)
        assert handle._server.live_sessions() == []
        assert not any(t.is_alive() for t in sessions)
        idle.close()
        active.close()

    def test_stop_drains_the_in_flight_request(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        handle = serve_tcp(engine, background=True)
        sock = socket.create_connection(handle.address, timeout=10)
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write('{"op":"query","v":0,"k":3}\n')
        stream.flush()
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        # The already-sent request still gets its answer.
        answer = json.loads(stream.readline())
        stopper.join(timeout=10)
        assert not stopper.is_alive()
        assert answer["ok"]
        sock.close()


class TestReloadAndStats:
    def _ask(self, address, lines):
        return TestTcp._ask(self, address, lines)

    def test_stats_response_carries_serving_counters(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with obs.collecting():
            with serve_tcp(engine, background=True) as handle:
                answers = self._ask(
                    handle.address,
                    ['{"op":"query","v":0,"k":2}', '{"op":"stats"}'],
                )
        counters = answers[1]["counters"]
        assert counters["serving.requests"] >= 2
        assert counters["serving.queries"] == 1
        assert all(name.startswith("serving.") for name in counters)

    def test_reload_without_a_reloader_is_unsupported(self, graph):
        engine = QueryEngine(graph, KvccIndex.build(graph))
        with serve_tcp(engine, background=True) as handle:
            answers = self._ask(handle.address, ['{"op":"reload"}'])
        assert answers[0]["code"] == "unsupported-op"

    def test_reload_swaps_in_the_reread_graph(self, graph, tmp_path):
        from repro.graph.io import read_edge_list, write_edge_list

        path = tmp_path / "served.edges"
        write_edge_list(graph, path)
        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(
            reloader=lambda: read_edge_list(path, allow_self_loops=True)
        )
        with obs.collecting() as collector:
            with serve_tcp(engine, settings, background=True) as handle:
                before = self._ask(handle.address, ['{"op":"reload"}'])[0]
                with open(path, "a", encoding="utf-8") as fh:
                    fh.write("10000001 0\n")
                after = self._ask(handle.address, ['{"op":"reload"}'])[0]
        assert before["ok"] and after["ok"]
        assert after["num_vertices"] == before["num_vertices"] + 1
        assert after["num_edges"] == before["num_edges"] + 1
        assert collector.counter("serving.engine.reloads") == 2

    def test_failing_reloader_answers_internal(self, graph, tmp_path):
        def explode():
            raise OSError("disk fell off")

        engine = QueryEngine(graph, KvccIndex.build(graph))
        settings = ServeSettings(reloader=explode)
        with serve_tcp(engine, settings, background=True) as handle:
            answers = self._ask(
                handle.address, ['{"op":"reload"}', '{"op":"ping"}']
            )
        assert answers[0]["code"] == "internal"
        assert "disk fell off" in answers[0]["error"]
        assert answers[1]["ok"]  # the session survives
