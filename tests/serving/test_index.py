"""KvccIndex: fingerprints, build, round-trip, staleness, versioning."""

import json

import pytest

from repro.core.hierarchy import kvcc_hierarchy, membership_levels
from repro.errors import ParameterError, ParseError
from repro.graph import Graph
from repro.graph.generators import (
    community_graph,
    overlapping_cliques_graph,
    planted_kvcc_graph,
)
from repro.serving import INDEX_SCHEMA, KvccIndex, graph_fingerprint


@pytest.fixture(scope="module")
def planted():
    return planted_kvcc_graph(3, 18, 4, seed=2)


class TestFingerprint:
    def test_deterministic_across_insertion_orders(self):
        a = Graph.from_edges([(1, 2), (2, 3), (3, 1)])
        b = Graph.from_edges([(3, 1), (2, 3), (2, 1)])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_sensitive_to_edges_and_isolated_vertices(self):
        base = Graph.from_edges([(1, 2), (2, 3)])
        extra_edge = Graph.from_edges([(1, 2), (2, 3), (3, 1)])
        extra_vertex = Graph.from_edges([(1, 2), (2, 3)], vertices=[9])
        assert graph_fingerprint(base) != graph_fingerprint(extra_edge)
        assert graph_fingerprint(base) != graph_fingerprint(extra_vertex)

    def test_distinguishes_int_from_str_labels(self):
        ints = Graph.from_edges([(1, 2)])
        strs = Graph.from_edges([("1", "2")])
        assert graph_fingerprint(ints) != graph_fingerprint(strs)

    def test_rejects_unserialisable_labels(self):
        g = Graph.from_edges([((1, 2), (3, 4))])
        with pytest.raises(ParameterError):
            graph_fingerprint(g)


class TestBuild:
    def test_levels_match_hierarchy_exactly(self, planted):
        index = KvccIndex.build(planted)
        assert index.levels == {
            k: tuple(components)
            for k, components in kvcc_hierarchy(planted).items()
        }
        assert index.complete
        assert index.max_k is None

    def test_capped_build_is_incomplete(self, planted):
        index = KvccIndex.build(planted, max_k=2)
        assert index.ceiling == 2
        assert not index.complete
        assert index.covers(2)
        assert not index.covers(3)

    def test_cap_beyond_exhaustion_is_complete(self, planted):
        full = KvccIndex.build(planted)
        index = KvccIndex.build(planted, max_k=full.ceiling + 5)
        assert index.complete
        assert index.covers(full.ceiling + 100)

    def test_membership_levels_match_live(self, planted):
        index = KvccIndex.build(planted)
        assert index.membership_levels() == membership_levels(planted)

    def test_containing_reports_overlaps(self):
        # Two K5s sharing 2 vertices: the shared pair belongs to both
        # 3-VCCs, everyone else to exactly one.
        g = overlapping_cliques_graph(2, 5, overlap=2, seed=0)
        index = KvccIndex.build(g)
        shared = [v for v in g.vertices() if len(index.containing(v, 3)) == 2]
        assert len(shared) == 2
        solo = [v for v in g.vertices() if len(index.containing(v, 3)) == 1]
        assert len(solo) == g.num_vertices - 2

    def test_unknown_vertex_and_uncovered_k_raise(self, planted):
        index = KvccIndex.build(planted, max_k=2)
        with pytest.raises(ParameterError):
            index.containing("nope", 2)
        with pytest.raises(ParameterError):
            index.containing(0, 3)
        with pytest.raises(ParameterError):
            index.covers(0)

    def test_invalid_max_k_rejected(self, planted):
        with pytest.raises(ParameterError):
            KvccIndex.build(planted, max_k=0)


class TestRoundTrip:
    GRAPHS = {
        "planted": planted_kvcc_graph(3, 18, 4, seed=2),
        "community": community_graph([14, 12], k=3, seed=5),
        "overlap": overlapping_cliques_graph(4, 6, overlap=2, seed=3),
    }

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_save_load_byte_identical(self, name, tmp_path):
        graph = self.GRAPHS[name]
        index = KvccIndex.build(graph)
        path = tmp_path / f"{name}.idx.json"
        index.save(path)
        first = path.read_bytes()
        reloaded = KvccIndex.load(path)
        reloaded.save(path)
        assert path.read_bytes() == first

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_reload_answers_identically(self, name, tmp_path):
        graph = self.GRAPHS[name]
        index = KvccIndex.build(graph)
        path = tmp_path / f"{name}.idx.json"
        index.save(path)
        reloaded = KvccIndex.load(path)
        assert reloaded.levels == index.levels
        assert reloaded.vertices == index.vertices
        assert reloaded.fingerprint == index.fingerprint
        assert reloaded.complete == index.complete
        for vertex in graph.vertices():
            for k in range(1, index.ceiling + 1):
                assert reloaded.containing(vertex, k) == index.containing(
                    vertex, k
                )

    def test_not_stale_after_reload_but_stale_after_edit(
        self, planted, tmp_path
    ):
        path = tmp_path / "planted.idx.json"
        KvccIndex.build(planted).save(path)
        index = KvccIndex.load(path)
        assert not index.is_stale(planted)
        edited = planted.copy()
        u = next(iter(edited.vertices()))
        v = next(w for w in edited.vertices() if not edited.has_edge(u, w)
                 and w != u)
        edited.add_edge(u, v)
        assert index.is_stale(edited)


class TestVersioning:
    def test_unknown_schema_rejected(self, planted):
        payload = json.loads(KvccIndex.build(planted).to_json())
        payload["schema"] = "repro.kvcc-index/999"
        with pytest.raises(ParseError):
            KvccIndex.from_json(json.dumps(payload))

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            KvccIndex.from_json("not json")
        with pytest.raises(ParseError):
            KvccIndex.from_json('{"schema": "repro.kvcc-index/1"}')

    def test_inconsistent_counts_rejected(self, planted):
        payload = json.loads(KvccIndex.build(planted).to_json())
        payload["num_vertices"] = 3
        with pytest.raises(ParseError):
            KvccIndex.from_json(json.dumps(payload))

    def test_component_outside_vertex_list_rejected(self, planted):
        payload = json.loads(KvccIndex.build(planted).to_json())
        payload["levels"]["2"][0].append("ghost")
        with pytest.raises(ParseError):
            KvccIndex.from_json(json.dumps(payload))

    def test_ceiling_mismatch_rejected(self, planted):
        payload = json.loads(KvccIndex.build(planted).to_json())
        payload["ceiling"] = 99
        with pytest.raises(ParseError):
            KvccIndex.from_json(json.dumps(payload))

    def test_schema_constant_is_versioned(self):
        assert INDEX_SCHEMA.endswith("/1")
