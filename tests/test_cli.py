"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import community_graph, write_edge_list


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(community_graph([10, 10], k=3, seed=0), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_enumerate_args(self):
        args = build_parser().parse_args(
            ["enumerate", "g.txt", "-k", "3", "--algorithm", "vcce-td"]
        )
        assert args.k == 3
        assert args.algorithm == "vcce-td"


class TestEnumerate:
    def test_default_algorithm(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "RIPPLE" in out
        assert "component 1" in out
        assert "component 2" in out

    def test_quiet(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "component" not in out

    def test_exact_algorithm(self, edge_list, capsys):
        assert (
            main(
                ["enumerate", edge_list, "-k", "3", "--algorithm", "vcce-td"]
            )
            == 0
        )
        assert "VCCE-TD" in capsys.readouterr().out

    def test_missing_file_is_reported(self, capsys):
        assert main(["enumerate", "/nonexistent", "-k", "3"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_k_is_reported(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_stats_flag_prints_counters(self, edge_list, capsys):
        assert main(["--stats", "enumerate", edge_list, "-k", "3",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Run statistics: counters (repro.obs)" in out
        assert "flow.dinic.augmentations" in out
        assert "expansion.rme.rounds" in out
        assert "merge.tests_attempted" in out
        assert "phase.seeding" in out

    def test_stats_flag_accepted_after_subcommand(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats"]) == 0
        assert "repro.obs" in capsys.readouterr().out

    def test_stats_json_dump_matches_schema(self, edge_list, tmp_path,
                                            capsys):
        import json

        from repro.obs import SCHEMA, Collector

        target = tmp_path / "stats.json"
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats-json", str(target)]) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == SCHEMA
        assert payload["counters"]["flow.dinic.calls"] > 0
        assert payload["counters"]["merge.tests_attempted"] > 0
        assert payload["phases"]["phase.seeding"] >= 0
        # and it round-trips through the collector itself
        rebuilt = Collector.from_json(target.read_text(encoding="utf-8"))
        assert rebuilt.counters == payload["counters"]

    def test_no_stats_by_default(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet"]) == 0
        assert "repro.obs" not in capsys.readouterr().out

    def test_stats_json_keeps_schema_on_empty_result(self, edge_list,
                                                     tmp_path, capsys):
        # Regression: a run that finds no components (k above anything
        # the graph holds) must still write a well-formed repro.obs/1
        # document — schema key, status, and empty counter maps.
        import json

        from repro.obs import SCHEMA, Collector

        target = tmp_path / "empty.json"
        assert main(["enumerate", edge_list, "-k", "9", "--quiet",
                     "--stats-json", str(target)]) == 0
        assert "0 9-VCC(s)" in capsys.readouterr().out
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == SCHEMA
        assert payload["status"] == "completed"
        Collector.from_json(target.read_text(encoding="utf-8"))  # parses


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ca-dblp" in out
        assert "socfb-konect" in out


class TestBench:
    def test_fig9_runs(self, capsys):
        assert main(["bench", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "seeding" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "table99"])


class TestVerifyCommand:
    def test_verify_good_result(self, edge_list, tmp_path, capsys):
        json_path = str(tmp_path / "result.json")
        assert (
            main(["enumerate", edge_list, "-k", "3", "--quiet",
                  "--json", json_path])
            == 0
        )
        capsys.readouterr()
        assert main(["verify", edge_list, json_path]) == 0
        out = capsys.readouterr().out
        assert "all components verified" in out
        assert out.count("OK") == 2

    def test_verify_catches_bogus_component(self, edge_list, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(
            '{"algorithm": "fake", "k": 3,'
            ' "components": [[0, 1, 2, 10, 11]]}',
            encoding="utf-8",
        )
        assert main(["verify", edge_list, str(bogus)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_verify_bad_json_reports_error(self, edge_list, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert main(["verify", edge_list, str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerateCommand:
    def test_generate_dataset(self, tmp_path, capsys):
        out = str(tmp_path / "uk.txt")
        assert main(["generate", "uk-2005", "-o", out]) == 0
        assert "165 vertices" in capsys.readouterr().out
        from repro.graph import read_edge_list

        g = read_edge_list(out)
        assert g.num_vertices == 165

    def test_generate_planted(self, tmp_path, capsys):
        out = str(tmp_path / "planted.txt")
        assert (
            main(
                ["generate", "planted", "-o", out, "--communities", "2",
                 "--size", "12", "-k", "3", "--seed", "5"]
            )
            == 0
        )
        from repro.graph import read_edge_list

        assert read_edge_list(out).num_vertices == 24

    def test_generate_unknown_dataset(self, tmp_path, capsys):
        assert main(["generate", "nope", "-o", str(tmp_path / "x")]) == 2
        assert "error" in capsys.readouterr().err


class TestIndexCommand:
    def test_build_then_inspect(self, edge_list, tmp_path, capsys):
        index_path = str(tmp_path / "graph.idx.json")
        assert main(["index", "build", edge_list, "-o", index_path]) == 0
        out = capsys.readouterr().out
        assert "index saved to" in out and "complete" in out
        assert main(["index", "inspect", index_path]) == 0
        out = capsys.readouterr().out
        assert "repro.kvcc-index/1" in out
        assert "Indexed levels" in out

    def test_build_with_max_k_reports_cap(self, edge_list, tmp_path, capsys):
        index_path = str(tmp_path / "graph.idx.json")
        assert main(["index", "build", edge_list, "-o", index_path,
                     "--max-k", "2"]) == 0
        assert "capped at 2" in capsys.readouterr().out

    def test_build_emits_serving_counters_in_stats_json(
        self, edge_list, tmp_path, capsys
    ):
        import json

        index_path = str(tmp_path / "graph.idx.json")
        stats_path = tmp_path / "stats.json"
        assert main(["--stats-json", str(stats_path), "index", "build",
                     edge_list, "-o", index_path]) == 0
        payload = json.loads(stats_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.obs/1"
        assert payload["counters"]["serving.index.builds"] == 1
        assert payload["counters"]["serving.index.components"] > 0

    def test_inspect_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert main(["index", "inspect", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestServeCommand:
    def _serve(self, monkeypatch, capsys, argv, lines):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(argv)
        captured = capsys.readouterr()
        import json

        return code, [json.loads(line) for line in
                      captured.out.splitlines() if line], captured.err

    def test_serve_stdio_with_index(self, edge_list, tmp_path, monkeypatch,
                                    capsys):
        index_path = str(tmp_path / "graph.idx.json")
        assert main(["index", "build", edge_list, "-o", index_path]) == 0
        capsys.readouterr()
        code, responses, err = self._serve(
            monkeypatch, capsys,
            ["serve", "--index", index_path],
            ['{"op":"query","v":0,"k":3}', '{"op":"shutdown"}'],
        )
        assert code == 0
        assert responses[0]["ok"] and responses[0]["source"] == "index"
        assert "2 request(s)" in err

    def test_serve_missing_index_degrades_with_graph(
        self, edge_list, tmp_path, monkeypatch, capsys
    ):
        code, responses, err = self._serve(
            monkeypatch, capsys,
            ["serve", "--graph", edge_list,
             "--index", str(tmp_path / "nope.json")],
            ['{"op":"query","v":0,"k":3}'],
        )
        assert code == 0
        assert "build-on-first-use" in err
        assert responses[0]["ok"]

    def test_serve_missing_index_without_graph_errors(self, tmp_path,
                                                      capsys):
        assert main(["serve", "--index", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_serve_corrupt_index_degrades_with_graph(
        self, edge_list, tmp_path, monkeypatch, capsys
    ):
        index_path = tmp_path / "graph.idx.json"
        assert main(["index", "build", edge_list,
                     "-o", str(index_path)]) == 0
        capsys.readouterr()
        document = index_path.read_text(encoding="utf-8")
        index_path.write_text(document[: len(document) // 2],
                              encoding="utf-8")
        code, responses, err = self._serve(
            monkeypatch, capsys,
            ["serve", "--graph", edge_list, "--index", str(index_path)],
            ['{"op":"query","v":0,"k":3}'],
        )
        assert code == 0
        assert "warning" in err and "build-on-first-use" in err
        assert responses[0]["ok"]
        # The damaged artifact was quarantined, not left in place.
        assert not index_path.exists()
        assert (tmp_path / "graph.idx.json.corrupt").exists()

    def test_serve_corrupt_index_without_graph_errors(
        self, edge_list, tmp_path, capsys
    ):
        index_path = tmp_path / "graph.idx.json"
        assert main(["index", "build", edge_list,
                     "-o", str(index_path)]) == 0
        capsys.readouterr()
        index_path.write_text("{torn", encoding="utf-8")
        assert main(["serve", "--index", str(index_path)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_serve_admission_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--graph", "g.txt", "--max-queue", "8",
             "--shed-policy", "strict"]
        )
        assert args.max_queue == 8
        assert args.shed_policy == "strict"

    def test_serve_needs_a_source(self, capsys):
        assert main(["serve"]) == 2
        assert "needs --graph" in capsys.readouterr().err

    def test_serve_rejects_bad_tcp_spec(self, edge_list, capsys):
        assert main(["serve", "--graph", edge_list, "--tcp", "nope"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestLoadtestCommand:
    def test_loadtest_args(self):
        args = build_parser().parse_args(
            ["loadtest", "g.txt", "--scenario", "point", "--scenario",
             "storm", "--rate", "25", "--arrival", "uniform"]
        )
        assert args.scenarios == ["point", "storm"]
        assert args.rate == 25.0
        assert args.arrival == "uniform"

    def test_loadtest_robustness_flags_parse(self):
        args = build_parser().parse_args(
            ["loadtest", "g.txt", "--retry-budget", "3",
             "--daemon-max-queue", "16", "--daemon-shed-policy", "bounded"]
        )
        assert args.retry_budget == 3
        assert args.daemon_max_queue == 16
        assert args.daemon_shed_policy == "bounded"

    def test_unknown_scenario_is_reported(self, edge_list, tmp_path,
                                          capsys):
        code = main(["loadtest", edge_list, "--scenario", "hurricane",
                     "--output-dir", str(tmp_path / "out")])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    @pytest.mark.slow
    def test_loadtest_end_to_end_writes_artifacts(self, edge_list,
                                                  tmp_path, capsys):
        out_dir = tmp_path / "results"
        code = main([
            "loadtest", edge_list,
            "--scenario", "point",
            "--rate", "30", "--duration", "0.8", "--warmup", "0.2",
            "--workers", "2", "--repetitions", "1",
            "--topology", "community-2x10-k3",
            "--output-dir", str(out_dir),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "point#1" in captured.out
        assert str(out_dir) in captured.out

        from repro.loadtest import read_run_table

        (row,) = read_run_table(out_dir / "run_table.csv")
        assert row.scenario == "point"
        assert row.topology == "community-2x10-k3"
        assert row.offered_rps == 30.0
        assert row.failure_rate == 0.0
        assert row.calibration_s > 0  # measured once, carried per row

        import json

        samples = [
            json.loads(line)
            for line in (out_dir / "samples.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        ]
        assert samples and all(s["scenario"] == "point" for s in samples)
        assert any(s["warmup"] for s in samples)


class TestSpanTracing:
    def test_stats_prints_span_tree(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Run statistics: span tree (repro.obs)" in out
        assert "pipeline.run" in out
        assert "merge.test" in out

    def test_trace_out_writes_perfetto_json(self, edge_list, tmp_path,
                                            capsys):
        import json

        target = tmp_path / "run.trace.json"
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--trace-out", str(target)]) == 0
        assert "trace saved to" in capsys.readouterr().out
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert "traceEvents" in doc
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert {"pipeline.run", "phase.seeding", "phase.merging"} <= names
        for event in slices:
            assert isinstance(event["ts"], int) and event["dur"] >= 1

    def test_profile_memory_adds_peaks(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats", "--profile-memory"]) == 0
        assert "peak +" in capsys.readouterr().out

    def test_profile_memory_alone_warns(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--profile-memory"]) == 0
        captured = capsys.readouterr()
        assert "--profile-memory needs" in captured.err
        assert "span tree" not in captured.out

    def test_stats_json_carries_spans(self, edge_list, tmp_path):
        import json

        target = tmp_path / "stats.json"
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats-json", str(target)]) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["spans"]["roots"]
        assert payload["spans"]["roots"][0]["name"] == "pipeline.run"


class TestStatsDiff:
    def _dump(self, edge_list, tmp_path, name, k):
        target = tmp_path / name
        assert main(["enumerate", edge_list, "-k", str(k), "--quiet",
                     "--stats-json", str(target)]) == 0
        return str(target)

    def test_diff_two_runs(self, edge_list, tmp_path, capsys):
        a = self._dump(edge_list, tmp_path, "a.json", 3)
        b = self._dump(edge_list, tmp_path, "b.json", 4)
        capsys.readouterr()
        assert main(["stats", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "Phase seconds" in out
        assert "Span wall seconds / peak memory" in out
        assert "pipeline.run" in out

    def test_diff_identical_runs(self, edge_list, tmp_path, capsys):
        a = self._dump(edge_list, tmp_path, "a.json", 3)
        capsys.readouterr()
        assert main(["stats", "diff", a, a]) == 0
        out = capsys.readouterr().out
        assert "counters: identical" in out

    def test_diff_rejects_corrupt_document(self, edge_list, tmp_path,
                                           capsys):
        a = self._dump(edge_list, tmp_path, "a.json", 3)
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        capsys.readouterr()
        assert main(["stats", "diff", a, str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["stats"])
