"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph import community_graph, write_edge_list


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(community_graph([10, 10], k=3, seed=0), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_enumerate_args(self):
        args = build_parser().parse_args(
            ["enumerate", "g.txt", "-k", "3", "--algorithm", "vcce-td"]
        )
        assert args.k == 3
        assert args.algorithm == "vcce-td"


class TestEnumerate:
    def test_default_algorithm(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "RIPPLE" in out
        assert "component 1" in out
        assert "component 2" in out

    def test_quiet(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "component" not in out

    def test_exact_algorithm(self, edge_list, capsys):
        assert (
            main(
                ["enumerate", edge_list, "-k", "3", "--algorithm", "vcce-td"]
            )
            == 0
        )
        assert "VCCE-TD" in capsys.readouterr().out

    def test_missing_file_is_reported(self, capsys):
        assert main(["enumerate", "/nonexistent", "-k", "3"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_k_is_reported(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestStats:
    def test_stats_flag_prints_counters(self, edge_list, capsys):
        assert main(["--stats", "enumerate", edge_list, "-k", "3",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Run statistics: counters (repro.obs)" in out
        assert "flow.dinic.augmentations" in out
        assert "expansion.rme.rounds" in out
        assert "merge.tests_attempted" in out
        assert "phase.seeding" in out

    def test_stats_flag_accepted_after_subcommand(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats"]) == 0
        assert "repro.obs" in capsys.readouterr().out

    def test_stats_json_dump_matches_schema(self, edge_list, tmp_path,
                                            capsys):
        import json

        from repro.obs import SCHEMA, Collector

        target = tmp_path / "stats.json"
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats-json", str(target)]) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == SCHEMA
        assert payload["counters"]["flow.dinic.calls"] > 0
        assert payload["counters"]["merge.tests_attempted"] > 0
        assert payload["phases"]["phase.seeding"] >= 0
        # and it round-trips through the collector itself
        rebuilt = Collector.from_json(target.read_text(encoding="utf-8"))
        assert rebuilt.counters == payload["counters"]

    def test_no_stats_by_default(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet"]) == 0
        assert "repro.obs" not in capsys.readouterr().out


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ca-dblp" in out
        assert "socfb-konect" in out


class TestBench:
    def test_fig9_runs(self, capsys):
        assert main(["bench", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "seeding" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "table99"])


class TestVerifyCommand:
    def test_verify_good_result(self, edge_list, tmp_path, capsys):
        json_path = str(tmp_path / "result.json")
        assert (
            main(["enumerate", edge_list, "-k", "3", "--quiet",
                  "--json", json_path])
            == 0
        )
        capsys.readouterr()
        assert main(["verify", edge_list, json_path]) == 0
        out = capsys.readouterr().out
        assert "all components verified" in out
        assert out.count("OK") == 2

    def test_verify_catches_bogus_component(self, edge_list, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(
            '{"algorithm": "fake", "k": 3,'
            ' "components": [[0, 1, 2, 10, 11]]}',
            encoding="utf-8",
        )
        assert main(["verify", edge_list, str(bogus)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_verify_bad_json_reports_error(self, edge_list, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert main(["verify", edge_list, str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestGenerateCommand:
    def test_generate_dataset(self, tmp_path, capsys):
        out = str(tmp_path / "uk.txt")
        assert main(["generate", "uk-2005", "-o", out]) == 0
        assert "165 vertices" in capsys.readouterr().out
        from repro.graph import read_edge_list

        g = read_edge_list(out)
        assert g.num_vertices == 165

    def test_generate_planted(self, tmp_path, capsys):
        out = str(tmp_path / "planted.txt")
        assert (
            main(
                ["generate", "planted", "-o", out, "--communities", "2",
                 "--size", "12", "-k", "3", "--seed", "5"]
            )
            == 0
        )
        from repro.graph import read_edge_list

        assert read_edge_list(out).num_vertices == 24

    def test_generate_unknown_dataset(self, tmp_path, capsys):
        assert main(["generate", "nope", "-o", str(tmp_path / "x")]) == 2
        assert "error" in capsys.readouterr().err


class TestSpanTracing:
    def test_stats_prints_span_tree(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "Run statistics: span tree (repro.obs)" in out
        assert "pipeline.run" in out
        assert "merge.test" in out

    def test_trace_out_writes_perfetto_json(self, edge_list, tmp_path,
                                            capsys):
        import json

        target = tmp_path / "run.trace.json"
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--trace-out", str(target)]) == 0
        assert "trace saved to" in capsys.readouterr().out
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert "traceEvents" in doc
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert {"pipeline.run", "phase.seeding", "phase.merging"} <= names
        for event in slices:
            assert isinstance(event["ts"], int) and event["dur"] >= 1

    def test_profile_memory_adds_peaks(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats", "--profile-memory"]) == 0
        assert "peak +" in capsys.readouterr().out

    def test_profile_memory_alone_warns(self, edge_list, capsys):
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--profile-memory"]) == 0
        captured = capsys.readouterr()
        assert "--profile-memory needs" in captured.err
        assert "span tree" not in captured.out

    def test_stats_json_carries_spans(self, edge_list, tmp_path):
        import json

        target = tmp_path / "stats.json"
        assert main(["enumerate", edge_list, "-k", "3", "--quiet",
                     "--stats-json", str(target)]) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["spans"]["roots"]
        assert payload["spans"]["roots"][0]["name"] == "pipeline.run"


class TestStatsDiff:
    def _dump(self, edge_list, tmp_path, name, k):
        target = tmp_path / name
        assert main(["enumerate", edge_list, "-k", str(k), "--quiet",
                     "--stats-json", str(target)]) == 0
        return str(target)

    def test_diff_two_runs(self, edge_list, tmp_path, capsys):
        a = self._dump(edge_list, tmp_path, "a.json", 3)
        b = self._dump(edge_list, tmp_path, "b.json", 4)
        capsys.readouterr()
        assert main(["stats", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "Phase seconds" in out
        assert "Span wall seconds / peak memory" in out
        assert "pipeline.run" in out

    def test_diff_identical_runs(self, edge_list, tmp_path, capsys):
        a = self._dump(edge_list, tmp_path, "a.json", 3)
        capsys.readouterr()
        assert main(["stats", "diff", a, a]) == 0
        out = capsys.readouterr().out
        assert "counters: identical" in out

    def test_diff_rejects_corrupt_document(self, edge_list, tmp_path,
                                           capsys):
        a = self._dump(edge_list, tmp_path, "a.json", 3)
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        capsys.readouterr()
        assert main(["stats", "diff", a, str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_diff_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["stats"])
