"""Cross-process determinism of the vertex-split network layout.

`VertexSplitNetwork` indexes members in a sorted, hash-independent
order and adds arcs in index order, so the Dinic arc arrays — and with
them every tie-break a max-flow run makes — are identical across
processes regardless of ``PYTHONHASHSEED``. This is what makes saved
stats documents and traces comparable between runs: the arc layout is
part of the observable behaviour (e.g. which minimum cut is reported).
"""

import json
import os
import pathlib
import subprocess
import sys

_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")

_SNIPPET = """
import json
from repro.flow.network import VertexSplitNetwork
from repro.graph.generators import community_graph

graph = community_graph([9, 9], k=3, seed=7)
members = {str(v) for v in graph.vertices()}  # str labels hash-randomise
relabeled = type(graph).from_edges(
    (str(u), str(v)) for u, v in graph.edges()
)
net = VertexSplitNetwork(
    relabeled, members, virtual_sources={"s": [str(v) for v in range(3)]}
)
dinic = net._dinic
print(json.dumps({
    "cap": dinic.cap,
    "to": dinic.to,
    "head": dinic.head,
    "cut": sorted(map(str, net.min_vertex_cut("8", "s"))),
}))
"""


def _run(hash_seed: str) -> dict:
    pythonpath = os.pathsep.join(
        p for p in (_SRC, os.environ.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": pythonpath,
        },
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_network_layout_stable_across_hash_seeds():
    first = _run("0")
    second = _run("424242")
    assert first == second
