"""Tests for the experiment harness (small slices, not full runs)."""

from repro.bench import (
    fig7_series,
    fig8_rows,
    fig9_rows,
    k_max,
    render_series,
    render_table,
    table3_rows,
    table6_rows,
)
from repro.bench.memory import measure_peak_memory
from repro.graph import clique_graph, community_graph


class TestKMax:
    def test_clique(self):
        assert k_max(clique_graph(6)) == 5

    def test_community(self):
        g = community_graph([14], k=3, seed=0)
        # clique-ring of width 3 has connectivity 6
        assert k_max(g) == 6


class TestMemoryProbe:
    def test_returns_result_and_positive_peak(self):
        result, peak = measure_peak_memory(lambda: [0] * 100_000)
        assert len(result) == 100_000
        assert peak > 100_000  # at least the list buffer

    def test_sequential_measurements_independent(self):
        _, big = measure_peak_memory(lambda: [0] * 500_000)
        _, small = measure_peak_memory(lambda: [0] * 1_000)
        assert small < big


class TestRendering:
    def test_table_alignment(self):
        text = render_table(
            "Title", ["a", "long_header"], [[1, 2.5], ["xy", None]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "long_header" in lines[2]
        assert "2.50" in text
        assert "-" in lines[-1]  # None renders as '-'

    def test_empty_table(self):
        text = render_table("T", ["x"], [])
        assert "x" in text

    def test_series(self):
        text = render_series(
            "Fig", "k", [3, 4], {"TD": [1.0, 2.0], "RP": [0.5, 0.25]}
        )
        assert "k" in text
        assert "0.25" in text


class TestExperimentSlices:
    def test_table3_single_dataset(self):
        rows = table3_rows(names=["uk-2005"])
        assert len(rows) == 3  # three k values
        for row in rows:
            name, k, rp_f, bu_f, rp_j, bu_j = row
            assert name == "uk-2005"
            assert 0 <= rp_f <= 100 and 0 <= bu_f <= 100
            # the headline claim, at row granularity
            assert rp_f >= bu_f - 0.01
            assert rp_j >= bu_j - 0.01

    def test_fig7_series_shape(self):
        ks, times = fig7_series("uk-2005")
        assert ks == [6, 7, 8]
        assert set(times) == {"VCCE-TD", "VCCE-BU", "RIPPLE"}
        assert all(len(v) == len(ks) for v in times.values())

    def test_fig8_rows(self):
        rows = fig8_rows(names=["uk-2005"])
        assert len(rows) == 1
        _, _, td_kib, bu_kib, rp_kib = rows[0]
        assert td_kib > 0 and bu_kib > 0 and rp_kib > 0

    def test_fig9_shares_sum_to_hundred(self):
        rows = fig9_rows(names=["uk-2005"])
        for row in rows:
            assert abs(sum(row[2:]) - 100.0) < 1.5  # rounding slack

    def test_table6_coverage_bounds(self):
        rows = table6_rows(names=["uk-2005"])
        for row in rows:
            _, _, kbfs, clique, total, speedup = row
            assert 0 <= kbfs <= 100
            assert 0 <= clique <= 100
            assert total >= max(kbfs, clique) - 0.01
            assert speedup > 0


class TestSanityCheck:
    def test_ripple_outputs_verify_on_dataset(self):
        from repro.bench.experiments import sanity_check_outputs

        assert sanity_check_outputs("uk-2005", 7)
