"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_shape(self):
        text = bar_chart("T", ["a", "bb"], [1.0, 2.0], unit="s")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "█" in lines[2]
        # the larger value gets the longer bar
        assert lines[3].count("█") > lines[2].count("█")
        assert "2s" in lines[3]

    def test_empty(self):
        assert "(no data)" in bar_chart("T", [], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart("T", ["a"], [1.0, 2.0])

    def test_log_scale_keeps_small_values_visible(self):
        text = bar_chart("T", ["tiny", "huge"], [0.001, 1000.0], log=True)
        tiny_line = text.splitlines()[2]
        assert tiny_line.count("█") >= 1

    def test_zero_values(self):
        text = bar_chart("T", ["z", "p"], [0.0, 5.0])
        z_line = text.splitlines()[2]
        assert z_line.count("█") == 0


class TestGroupedBarChart:
    def test_series_per_x(self):
        text = grouped_bar_chart(
            "Fig", [3, 4], {"TD": [1.0, 0.5], "RP": [0.2, 0.1]}
        )
        assert "x=3" in text and "x=4" in text
        assert text.count("TD") == 2
        assert text.count("RP") == 2

    def test_empty_series(self):
        assert "(no data)" in grouped_bar_chart("F", [], {"a": []})
