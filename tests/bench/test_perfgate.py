"""Tests for the perf-regression gate (repro.bench.perfgate + scripts)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import perfgate
from repro.bench.perfgate import BenchCase

REPO = Path(__file__).resolve().parents[2]
SCRIPTS = REPO / "scripts"


def _tiny_cases() -> dict[str, BenchCase]:
    def setup():
        return lambda: sum(range(500))

    return {"tiny/sum": BenchCase("tiny/sum", "trivial case", setup)}


def _doc(calibration=0.01, wall=0.1, mem=1000, spans=None):
    return {
        "schema": perfgate.SCHEMA,
        "calibration_s": calibration,
        "repeats": 3,
        "cases": {
            "c": {
                "description": "synthetic",
                "wall_s": wall,
                "mem_peak_bytes": mem,
                "spans": spans or {},
            }
        },
    }


class TestSuite:
    def test_run_suite_document_shape(self):
        document = perfgate.run_suite(repeats=1, cases=_tiny_cases())
        assert document["schema"] == perfgate.SCHEMA
        assert document["calibration_s"] > 0
        case = document["cases"]["tiny/sum"]
        assert case["wall_s"] >= 0
        assert case["mem_peak_bytes"] >= 0
        assert isinstance(case["spans"], dict)

    def test_builtin_cases_record_pipeline_spans(self):
        cases = perfgate.builtin_cases()
        case = cases["ripple/planted-3x30-k4"]
        measured = perfgate.run_case(case, repeats=1)
        assert measured["wall_s"] > 0
        assert measured["mem_peak_bytes"] > 0
        assert "pipeline.run" in measured["spans"]
        assert "phase.merging" in measured["spans"]

    def test_calibration_is_positive_and_stable(self):
        first = perfgate.calibrate(rounds=1)
        assert first > 0

    def test_load_document_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1"}), encoding="utf-8")
        with pytest.raises(ValueError):
            perfgate.load_document(str(bad))


class TestCompare:
    def test_within_tolerance_passes(self):
        verdict = perfgate.compare(_doc(wall=0.1), _doc(wall=0.11))
        assert verdict["ok"] and not verdict["failures"]

    def test_wall_regression_fails(self):
        verdict = perfgate.compare(_doc(wall=0.1), _doc(wall=0.2))
        assert not verdict["ok"]
        assert any("wall" in line for line in verdict["failures"])

    def test_mem_regression_fails(self):
        verdict = perfgate.compare(_doc(mem=1000), _doc(mem=1300))
        assert not verdict["ok"]
        assert any("mem" in line for line in verdict["failures"])

    def test_calibration_normalises_slow_machines(self):
        # Candidate took 2x the wall time on a machine whose busy loop
        # is also 2x slower: no regression after normalisation.
        baseline = _doc(calibration=0.01, wall=0.1)
        candidate = _doc(calibration=0.02, wall=0.2)
        assert perfgate.compare(baseline, candidate)["ok"]

    def test_missing_case_fails(self):
        candidate = _doc()
        candidate["cases"] = {}
        verdict = perfgate.compare(_doc(), candidate)
        assert not verdict["ok"]
        assert "missing" in verdict["failures"][0]

    def test_new_case_is_reported_not_gated(self):
        baseline = _doc()
        candidate = _doc()
        candidate["cases"]["extra"] = candidate["cases"]["c"].copy()
        verdict = perfgate.compare(baseline, candidate)
        assert verdict["ok"]
        assert any("new case" in row[-1] for row in verdict["rows"])

    def test_span_delta_rows(self):
        baseline = _doc(spans={"merge.test": 0.05})
        candidate = _doc(wall=0.2, spans={"merge.test": 0.15})
        verdict = perfgate.compare(baseline, candidate)
        assert ["c", "merge.test", "0.050000", "0.150000", "+200.0%"] in (
            verdict["span_rows"]
        )

    def test_render_report_shows_spans_on_failure(self):
        baseline = _doc(spans={"merge.test": 0.05})
        candidate = _doc(wall=0.5, spans={"merge.test": 0.4})
        report = perfgate.render_report(
            perfgate.compare(baseline, candidate)
        )
        assert "FAILURES" in report
        assert "Per-span wall deltas" in report
        report_ok = perfgate.render_report(
            perfgate.compare(baseline, _doc(spans={"merge.test": 0.05}))
        )
        assert "perf gate passed" in report_ok
        assert "Per-span wall deltas" not in report_ok


class TestScripts:
    """End to end: the acceptance criterion for the gate scripts."""

    def _run(self, script, *argv):
        return subprocess.run(
            [sys.executable, str(SCRIPTS / script), *argv],
            capture_output=True,
            text=True,
            cwd=str(REPO),
        )

    def test_baseline_then_compare_clean_and_injected(self, tmp_path):
        baseline = tmp_path / "base.json"
        written = self._run(
            "bench_baseline.py", "--output", str(baseline),
            "--repeats", "3",
        )
        assert written.returncode == 0, written.stderr
        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert document["schema"] == perfgate.SCHEMA

        # A widened tolerance keeps machine-load noise from flaking the
        # clean run; the injected 2x slowdown (+100%) still trips it.
        clean = self._run(
            "bench_compare.py", str(baseline), "--repeats", "3",
            "--wall-tolerance", "0.8",
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "perf gate passed" in clean.stdout

        slowed = self._run(
            "bench_compare.py", str(baseline), "--repeats", "3",
            "--wall-tolerance", "0.5",
            "--inject-slowdown", "ripple/planted-3x30-k4:2.0",
        )
        assert slowed.returncode == 1, slowed.stdout + slowed.stderr
        assert "WALL REGRESSION" in slowed.stdout
        assert "Per-span wall deltas" in slowed.stdout

    def test_baseline_refuses_overwrite_without_refresh(self, tmp_path):
        target = tmp_path / "base.json"
        target.write_text("{}", encoding="utf-8")
        refused = self._run(
            "bench_baseline.py", "--output", str(target), "--repeats", "1"
        )
        assert refused.returncode == 2
        assert "--refresh" in refused.stderr

    def test_compare_reports_missing_baseline(self, tmp_path):
        missing = self._run(
            "bench_compare.py", str(tmp_path / "none.json"),
            "--repeats", "1",
        )
        assert missing.returncode == 2
        assert "error" in missing.stderr

    def test_compare_save_current_artifact(self, tmp_path):
        baseline = tmp_path / "base.json"
        assert self._run(
            "bench_baseline.py", "--output", str(baseline),
            "--repeats", "1",
        ).returncode == 0
        current = tmp_path / "current.json"
        run = self._run(
            "bench_compare.py", str(baseline), "--repeats", "1",
            # Generous tolerance: this test checks the artifact, not the
            # gate, and single-repeat walls are noisy under suite load.
            "--wall-tolerance", "5.0",
            "--save-current", str(current),
        )
        assert run.returncode == 0, run.stdout + run.stderr
        saved = json.loads(current.read_text(encoding="utf-8"))
        assert saved["schema"] == perfgate.SCHEMA


def _load_row(**overrides):
    from repro.loadtest import Sample
    from repro.loadtest.run_table import aggregate

    kwargs = dict(
        scenario="smoke",
        repetition=1,
        topology="toy",
        workers=2,
        offered_rps=40.0,
        samples=[Sample("point", 0.5, 2.0, "ok")] * 10,
        measure_window_s=1.0,
        calibration_s=0.02,
    )
    kwargs.update(overrides)
    return aggregate(**kwargs)


def _load_gate(**overrides):
    gate = {
        "schema": perfgate.LOAD_GATE_SCHEMA,
        "scenario": "smoke",
        "calibration_s": 0.02,
        "p95_ceiling_ms": 10.0,
        "rps_floor": 5.0,
        "max_failure_rate": 0.0,
    }
    gate.update(overrides)
    return gate


class TestLoadGate:
    def test_clean_rows_pass(self):
        verdict = perfgate.compare_load_table([_load_row()], _load_gate())
        assert verdict["ok"] and not verdict["failures"]

    def test_gate_scenario_filters_rows(self):
        other = _load_row(scenario="storm")
        verdict = perfgate.compare_load_table([other], _load_gate())
        assert not verdict["ok"]
        assert "no run-table rows matched" in verdict["failures"][0]

    def test_failure_rate_over_cap_fails(self):
        from repro.loadtest import Sample

        samples = [Sample("point", 0.5, 2.0, "ok")] * 9 + [
            Sample("point", 0.6, 0.0, "deadline", code="client-timeout")
        ]
        verdict = perfgate.compare_load_table(
            [_load_row(samples=samples)], _load_gate()
        )
        assert not verdict["ok"]
        assert any("failure_rate" in f for f in verdict["failures"])

    def test_slowness_rescales_both_thresholds(self):
        from repro.loadtest import Sample

        # A 10x slower machine: p95 ceiling stretches 10x, floor
        # shrinks 10x — the same row passes where raw thresholds fail.
        slow_samples = [Sample("point", 0.5, 50.0, "ok")] * 6
        raw = _load_gate(p95_ceiling_ms=10.0, rps_floor=5.0)
        slow_row = _load_row(calibration_s=0.2, samples=slow_samples)
        assert perfgate.compare_load_table([slow_row], raw)["ok"]
        reference_speed = _load_row(samples=slow_samples)
        assert not perfgate.compare_load_table([reference_speed], raw)["ok"]

    def test_row_without_calibration_fails(self):
        verdict = perfgate.compare_load_table(
            [_load_row(calibration_s=float("nan"))], _load_gate()
        )
        assert not verdict["ok"]
        assert any("calibration" in f for f in verdict["failures"])

    def test_config_rejects_wrong_schema_and_types(self, tmp_path):
        wrong = tmp_path / "gate.json"
        wrong.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            perfgate.load_gate_config(str(wrong))
        untyped = tmp_path / "untyped.json"
        untyped.write_text(
            json.dumps(dict(_load_gate(), rps_floor="fast")),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="rps_floor"):
            perfgate.load_gate_config(str(untyped))

    def test_render_load_report_lists_failures(self):
        verdict = perfgate.compare_load_table(
            [_load_row(calibration_s=float("nan"))], _load_gate()
        )
        report = perfgate.render_load_report(verdict)
        assert "Load gate" in report
        assert "FAILURES" in report


class TestLoadGateScript:
    _run = TestScripts._run

    def _table(self, tmp_path, rows):
        from repro.loadtest.run_table import write_run_table

        path = tmp_path / "run_table.csv"
        write_run_table(path, rows)
        return path

    def test_load_table_mode_passes_and_trips(self, tmp_path):
        gate_path = tmp_path / "gate.json"
        gate_path.write_text(json.dumps(_load_gate()), encoding="utf-8")
        table = self._table(tmp_path, [_load_row()])
        clean = self._run(
            "bench_compare.py", "--load-table", str(table),
            "--load-gate", str(gate_path),
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert "load gate passed" in clean.stdout

        strict = tmp_path / "strict.json"
        strict.write_text(
            json.dumps(_load_gate(p95_ceiling_ms=0.000001)),
            encoding="utf-8",
        )
        tripped = self._run(
            "bench_compare.py", "--load-table", str(table),
            "--load-gate", str(strict),
        )
        assert tripped.returncode == 1
        assert "p95" in tripped.stdout

    def test_load_table_mode_reports_bad_inputs(self, tmp_path):
        gate_path = tmp_path / "gate.json"
        gate_path.write_text(json.dumps(_load_gate()), encoding="utf-8")
        missing = self._run(
            "bench_compare.py", "--load-table", str(tmp_path / "no.csv"),
            "--load-gate", str(gate_path),
        )
        assert missing.returncode == 2
        assert "error" in missing.stderr
