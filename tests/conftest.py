"""Shared test fixtures and oracle helpers."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest

from repro.graph import Graph


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert a repro Graph into a networkx Graph (test oracle only)."""
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.vertices())
    nxg.add_edges_from(graph.edges())
    return nxg


def brute_force_is_k_connected(graph: Graph, k: int) -> bool:
    """Definition-level check: removing any k-1 vertices keeps G connected.

    Exponential — only for graphs with ~12 or fewer vertices.
    """
    from repro.graph import is_connected

    n = graph.num_vertices
    if n <= k:
        return False
    if not is_connected(graph):
        return False
    members = graph.vertex_set()
    for size in range(1, k):
        for removed in itertools.combinations(members, size):
            rest = members - set(removed)
            if len(rest) <= 1:
                continue
            if not is_connected(graph.subgraph(rest)):
                return False
    return True


@pytest.fixture
def paper_figure1_graph() -> Graph:
    """The 16-vertex, 36-edge example graph of Figure 1.

    Built to match the paper's stated k-VCC structure:

    * k=2: vertices 1..15 form the 2-VCC (16 hangs off one vertex);
    * k=3: {10..14} and {1..9} are the two 3-VCCs;
    * k=4: only {10..14} (K5) survives.
    """
    g = Graph()
    # G2 = {10, 11, 12, 13, 14}: a K5 (4-vertex connected).
    for u, v in itertools.combinations(range(10, 15), 2):
        g.add_edge(u, v)
    # G3 = {1..9}: 3-vertex connected but not 4 (circulant C9(1,2) is
    # exactly 4-connected, so drop one chord to land at 3).
    for i in range(9):
        g.add_edge(1 + i, 1 + (i + 1) % 9)
        g.add_edge(1 + i, 1 + (i + 2) % 9)
    g.remove_edge(1, 3)
    # Vertex 15 ties the two 3-VCCs together with 2 edges each, and one
    # direct bridge 9–14 gives the union 2- (but not 3-) connectivity.
    g.add_edge(15, 1)
    g.add_edge(15, 2)
    g.add_edge(15, 10)
    g.add_edge(15, 11)
    g.add_edge(9, 14)
    # Vertex 16 hangs off vertex 9 with a single edge: only in the 1-VCC.
    g.add_edge(16, 9)
    return g
