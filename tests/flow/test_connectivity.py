"""Tests for vertex-connectivity queries against networkx and brute force."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.flow import (
    find_vertex_cut,
    global_vertex_connectivity,
    is_k_vertex_connected,
    is_k_vertex_connected_subset,
    local_connectivity,
    local_connectivity_at_least,
)
from repro.graph import (
    Graph,
    circulant_graph,
    clique_graph,
    community_graph,
    component_of,
    random_gnm,
)
from tests.conftest import brute_force_is_k_connected, to_networkx


def path_graph(n: int) -> Graph:
    return Graph.from_edges((i, i + 1) for i in range(n - 1))


class TestLocalConnectivity:
    def test_adjacent_is_infinite(self):
        assert local_connectivity(clique_graph(3), 0, 1) == math.inf

    def test_path_endpoints(self):
        assert local_connectivity(path_graph(4), 0, 3) == 1

    def test_same_vertex_raises(self):
        with pytest.raises(ParameterError):
            local_connectivity(clique_graph(3), 1, 1)

    def test_disconnected_pair(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert local_connectivity(g, 0, 3) == 0

    def test_at_least_variants(self):
        g = circulant_graph(10, 2)  # 4-connected
        assert local_connectivity_at_least(g, 0, 5, 4)
        assert not local_connectivity_at_least(g, 0, 5, 5)
        assert local_connectivity_at_least(g, 0, 1, 99)  # adjacent

    @given(st.integers(min_value=0, max_value=800))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(12, 25, seed=seed)
        nxg = to_networkx(g)
        pairs = [
            (u, v)
            for u in g.vertices()
            for v in g.vertices()
            if u < v and not g.has_edge(u, v)
        ][:5]
        for u, v in pairs:
            ours = local_connectivity(g, u, v)
            theirs = nx.connectivity.local_node_connectivity(nxg, u, v)
            assert ours == theirs


class TestFindVertexCut:
    def test_no_cut_in_clique(self):
        assert find_vertex_cut(clique_graph(5), 3) is None

    def test_low_degree_shortcut(self):
        g = clique_graph(5)
        g.add_edge(0, "pendant")
        cut = find_vertex_cut(g, 3)
        assert cut == {0}

    def test_cut_found_between_communities(self):
        g = community_graph([8, 8], k=3, seed=1, bridge_width=2)
        cut = find_vertex_cut(g, 3)
        assert cut is not None
        assert len(cut) < 3
        remaining = g.vertex_set() - cut
        sub = g.subgraph(remaining)
        anchor = next(iter(remaining))
        assert component_of(sub, anchor) != remaining

    def test_circulant_has_no_small_cut(self):
        g = circulant_graph(12, 2)  # 4-connected
        assert find_vertex_cut(g, 4) is None
        assert find_vertex_cut(g, 5) is not None

    def test_disconnected_input_raises(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(ParameterError):
            find_vertex_cut(g, 2)

    def test_invalid_k_raises(self):
        with pytest.raises(ParameterError):
            find_vertex_cut(clique_graph(3), 0)

    def test_single_vertex(self):
        g = Graph.from_edges([], vertices=[1])
        assert find_vertex_cut(g, 3) is None

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_returned_cut_separates(self, seed):
        g = random_gnm(14, 30, seed=seed)
        comp = component_of(g, next(iter(g.vertices())))
        g = g.subgraph(comp)  # ensure connected input
        if g.num_vertices < 4:
            return
        cut = find_vertex_cut(g, 3)
        if cut is None:
            assert global_vertex_connectivity(g) >= min(
                3, g.num_vertices - 1
            )
        else:
            assert len(cut) < 3
            rest = g.vertex_set() - cut
            sub = g.subgraph(rest)
            anchor = next(iter(rest))
            assert component_of(sub, anchor) != rest


class TestIsKVertexConnected:
    def test_clique(self):
        assert is_k_vertex_connected(clique_graph(5), 4)
        assert not is_k_vertex_connected(clique_graph(5), 5)

    def test_circulant_exact_threshold(self):
        g = circulant_graph(12, 2)
        assert is_k_vertex_connected(g, 4)
        assert not is_k_vertex_connected(g, 5)

    def test_too_few_vertices(self):
        assert not is_k_vertex_connected(clique_graph(3), 3)

    def test_disconnected(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4)])
        assert not is_k_vertex_connected(g, 1)

    def test_invalid_k_raises(self):
        with pytest.raises(ParameterError):
            is_k_vertex_connected(clique_graph(4), 0)

    def test_subset_variant(self):
        g = community_graph([10, 10], k=3, seed=2)
        assert is_k_vertex_connected_subset(g, set(range(10)), 3)
        assert not is_k_vertex_connected_subset(g, g.vertex_set(), 3)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force(self, seed):
        g = random_gnm(9, 16, seed=seed)
        for k in (1, 2, 3):
            assert is_k_vertex_connected(g, k) == brute_force_is_k_connected(
                g, k
            )


class TestGlobalConnectivity:
    def test_known_values(self):
        assert global_vertex_connectivity(clique_graph(6)) == 5
        assert global_vertex_connectivity(path_graph(5)) == 1
        assert global_vertex_connectivity(circulant_graph(10, 2)) == 4

    def test_disconnected_zero(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert global_vertex_connectivity(g) == 0

    def test_tiny_raises(self):
        with pytest.raises(ParameterError):
            global_vertex_connectivity(Graph.from_edges([], vertices=[1]))

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(11, 22, seed=seed)
        ours = global_vertex_connectivity(g)
        theirs = nx.node_connectivity(to_networkx(g))
        assert ours == theirs


class TestSideVertex:
    def test_simplicial_vertices_are_side_vertices(self):
        from repro.flow import is_side_vertex

        # two K4s sharing an edge: the shared pair is the unique 2-cut
        g = clique_graph(4)
        for u, v in clique_graph(4, offset=2).edges():
            g.add_edge(u, v)
        # outer vertices (simplicial) are side-vertices at k=3
        for v in (0, 1, 4, 5):
            assert is_side_vertex(g, v, 3), v
        # shared vertices sit in the 2-cut {2, 3}
        for v in (2, 3):
            assert not is_side_vertex(g, v, 3), v

    def test_clique_members_always_side_vertices(self):
        from repro.flow import is_side_vertex

        g = clique_graph(5)
        for v in g.vertices():
            assert is_side_vertex(g, v, 3)

    def test_validation(self):
        from repro.flow import is_side_vertex

        with pytest.raises(ParameterError):
            is_side_vertex(clique_graph(3), 0, 0)
        with pytest.raises(ParameterError):
            is_side_vertex(clique_graph(3), 99, 2)


class TestDepositSweepEquivalence:
    """The sweep-optimised cut search agrees with brute-force checks."""

    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=20, deadline=None)
    def test_cut_decision_matches_networkx(self, seed):
        g = random_gnm(13, 32, seed=seed)
        comp = component_of(g, next(iter(g.vertices())))
        g = g.subgraph(comp)
        if g.num_vertices < 5:
            return
        nxg = to_networkx(g)
        kappa = nx.node_connectivity(nxg)
        for k in (2, 3, 4):
            found = find_vertex_cut(g, k)
            if g.num_edges == g.num_vertices * (g.num_vertices - 1) // 2:
                assert found is None
            elif kappa >= k:
                assert found is None, (seed, k, found)
            else:
                assert found is not None and len(found) < k, (seed, k)
