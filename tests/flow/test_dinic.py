"""Tests for the Dinic max-flow engine."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.flow import Dinic


class TestBasics:
    def test_single_edge(self):
        d = Dinic(2)
        d.add_edge(0, 1, 5)
        assert d.max_flow(0, 1) == 5

    def test_no_path(self):
        d = Dinic(3)
        d.add_edge(0, 1, 1)
        assert d.max_flow(0, 2) == 0

    def test_series_bottleneck(self):
        d = Dinic(3)
        d.add_edge(0, 1, 7)
        d.add_edge(1, 2, 3)
        assert d.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2)
        d.add_edge(1, 3, 2)
        d.add_edge(0, 2, 3)
        d.add_edge(2, 3, 3)
        assert d.max_flow(0, 3) == 5

    def test_classic_cross_network(self):
        # The textbook network where a naive augmenting path must be
        # undone through the cross edge.
        d = Dinic(4)
        d.add_edge(0, 1, 1)
        d.add_edge(0, 2, 1)
        d.add_edge(1, 2, 1)
        d.add_edge(1, 3, 1)
        d.add_edge(2, 3, 1)
        assert d.max_flow(0, 3) == 2

    def test_same_source_sink_raises(self):
        with pytest.raises(ParameterError):
            Dinic(2).max_flow(1, 1)

    def test_bad_edge_raises(self):
        d = Dinic(2)
        with pytest.raises(ParameterError):
            d.add_edge(0, 5, 1)
        with pytest.raises(ParameterError):
            d.add_edge(0, 1, -2)

    def test_negative_size_raises(self):
        with pytest.raises(ParameterError):
            Dinic(-1)


class TestAddEdgesBulk:
    PAIRS = [(0, 1), (1, 3), (0, 2), (2, 3), (1, 2)]

    def test_layout_matches_repeated_add_edge(self):
        one = Dinic(4)
        for u, v in self.PAIRS:
            one.add_edge(u, v, 7)
        bulk = Dinic(4)
        first = bulk.add_edges([x for uv in self.PAIRS for x in uv], 7)
        assert first == 0
        assert bulk.to == one.to
        assert bulk.cap == one.cap
        assert bulk.next_edge == one.next_edge
        assert bulk.head == one.head

    def test_flow_matches(self):
        bulk = Dinic(4)
        bulk.add_edges([0, 1, 1, 3, 0, 2, 2, 3], 2)
        assert bulk.max_flow(0, 3) == 4

    def test_appends_after_existing_edges(self):
        d = Dinic(4)
        d.add_edge(0, 1, 1)
        first = d.add_edges([1, 2, 2, 3], 5)
        assert first == 2
        assert d.max_flow(0, 3) == 1

    def test_empty_is_noop(self):
        d = Dinic(3)
        assert d.add_edges([], 1) == 0
        assert d.to == []

    def test_validation(self):
        d = Dinic(3)
        with pytest.raises(ParameterError):
            d.add_edges([0, 1, 2], 1)  # odd length
        with pytest.raises(ParameterError):
            d.add_edges([0, 5], 1)  # out of range
        with pytest.raises(ParameterError):
            d.add_edges([0, 1], -1)  # negative capacity
        with pytest.raises(ParameterError):
            d.add_edges([0, 1], 1.5)  # fractional capacity
        assert d.to == []  # nothing half-applied


class TestCutoff:
    def test_cutoff_truncates(self):
        d = Dinic(2)
        d.add_edge(0, 1, 100)
        assert d.max_flow(0, 1, cutoff=3) == 3

    def test_cutoff_above_max_returns_max(self):
        d = Dinic(3)
        d.add_edge(0, 1, 2)
        d.add_edge(1, 2, 2)
        assert d.max_flow(0, 2, cutoff=10) == 2


class TestMinCut:
    def test_cut_side_contains_source(self):
        d = Dinic(3)
        d.add_edge(0, 1, 1)
        d.add_edge(1, 2, 1)
        d.max_flow(0, 2)
        side = d.min_cut_side(0)
        assert 0 in side
        assert 2 not in side


def _random_flow_network(rng_seed: int, n: int = 10, m: int = 25):
    import random

    rng = random.Random(rng_seed)
    edges = []
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, rng.randint(1, 9)))
    return n, edges


class TestAgainstNetworkx:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_maxflow(self, seed):
        n, edges = _random_flow_network(seed)
        d = Dinic(n)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        for u, v, c in edges:
            d.add_edge(u, v, c)
            if nxg.has_edge(u, v):
                nxg[u][v]["capacity"] += c
            else:
                nxg.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(nxg, 0, n - 1)
        assert d.max_flow(0, n - 1) == expected
