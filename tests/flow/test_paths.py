"""Tests for vertex-disjoint path extraction (constructive Menger)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.flow import vertex_disjoint_paths
from repro.graph import Graph, circulant_graph, clique_graph, random_gnm
from tests.conftest import to_networkx


def assert_valid_disjoint_paths(graph, paths, source, sink):
    interior_seen = set()
    for path in paths:
        assert path[0] == source and path[-1] == sink
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b), (a, b)
        interior = set(path[1:-1])
        assert len(interior) == len(path) - 2  # simple path
        assert not (interior & interior_seen), "paths share a vertex"
        interior_seen |= interior


class TestBasics:
    def test_cycle_two_paths(self):
        g = Graph.from_edges((i, (i + 1) % 6) for i in range(6))
        paths = vertex_disjoint_paths(g, 0, 3)
        assert len(paths) == 2
        assert_valid_disjoint_paths(g, paths, 0, 3)

    def test_adjacent_pair_includes_direct_edge(self):
        g = clique_graph(5)
        paths = vertex_disjoint_paths(g, 0, 1)
        assert [0, 1] in paths
        assert len(paths) == 4  # direct + 3 two-hop routes
        assert_valid_disjoint_paths(g, paths, 0, 1)

    def test_disconnected_pair(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert vertex_disjoint_paths(g, 0, 3) == []

    def test_limit(self):
        g = clique_graph(6)
        paths = vertex_disjoint_paths(g, 0, 5, limit=2)
        assert len(paths) == 2
        assert_valid_disjoint_paths(g, paths, 0, 5)

    def test_limit_one_on_adjacent_pair(self):
        g = clique_graph(4)
        assert vertex_disjoint_paths(g, 0, 1, limit=1) == [[0, 1]]

    def test_validation(self):
        g = clique_graph(3)
        with pytest.raises(ParameterError):
            vertex_disjoint_paths(g, 0, 0)
        with pytest.raises(ParameterError):
            vertex_disjoint_paths(g, 0, 99)
        with pytest.raises(ParameterError):
            vertex_disjoint_paths(g, 0, 1, limit=0)

    def test_does_not_mutate_graph(self):
        g = clique_graph(4)
        edges_before = set(map(frozenset, g.edges()))
        vertex_disjoint_paths(g, 0, 1)
        assert set(map(frozenset, g.edges())) == edges_before


class TestAgainstConnectivity:
    def test_circulant_count(self):
        g = circulant_graph(12, 3)  # 6-connected
        paths = vertex_disjoint_paths(g, 0, 6)
        assert len(paths) == 6
        assert_valid_disjoint_paths(g, paths, 0, 6)

    @given(st.integers(min_value=0, max_value=800))
    @settings(max_examples=20, deadline=None)
    def test_count_matches_networkx_and_paths_valid(self, seed):
        import networkx as nx

        g = random_gnm(13, 30, seed=seed)
        nxg = to_networkx(g)
        pairs = [
            (u, v)
            for u in g.vertices()
            for v in g.vertices()
            if u < v
        ][:8]
        for u, v in pairs:
            paths = vertex_disjoint_paths(g, u, v)
            expected = nx.connectivity.local_node_connectivity(nxg, u, v)
            if g.has_edge(u, v):
                # networkx counts the direct edge as one path too
                assert len(paths) == expected
            else:
                assert len(paths) == expected
            assert_valid_disjoint_paths(g, paths, u, v)
