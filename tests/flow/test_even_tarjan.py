"""Tests for the Even–Tarjan reference flow engine."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.flow import Dinic, EvenTarjan


class TestBasics:
    def test_single_edge(self):
        et = EvenTarjan(2)
        et.add_edge(0, 1, 7)
        assert et.max_flow(0, 1) == 7

    def test_series_bottleneck(self):
        et = EvenTarjan(3)
        et.add_edge(0, 1, 5)
        et.add_edge(1, 2, 2)
        assert et.max_flow(0, 2) == 2

    def test_cross_network_rerouting(self):
        et = EvenTarjan(4)
        for u, v in ((0, 1), (0, 2), (1, 2), (1, 3), (2, 3)):
            et.add_edge(u, v, 1)
        assert et.max_flow(0, 3) == 2

    def test_cutoff(self):
        et = EvenTarjan(2)
        et.add_edge(0, 1, 100)
        assert et.max_flow(0, 1, cutoff=6) == 6

    def test_validation(self):
        with pytest.raises(ParameterError):
            EvenTarjan(-1)
        et = EvenTarjan(2)
        with pytest.raises(ParameterError):
            et.add_edge(0, 5, 1)
        with pytest.raises(ParameterError):
            et.add_edge(0, 1, -1)
        with pytest.raises(ParameterError):
            et.max_flow(1, 1)

    def test_min_cut_side(self):
        et = EvenTarjan(3)
        et.add_edge(0, 1, 1)
        et.add_edge(1, 2, 5)
        et.max_flow(0, 2)
        side = et.min_cut_side(0)
        assert 0 in side and 2 not in side


def _random_network(seed: int, n: int = 10, m: int = 25):
    import random

    rng = random.Random(seed)
    edges = []
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, rng.randint(1, 9)))
    return n, edges


class TestAgainstDinic:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=40, deadline=None)
    def test_engines_agree(self, seed):
        n, edges = _random_network(seed)
        et = EvenTarjan(n)
        dn = Dinic(n)
        for u, v, c in edges:
            et.add_edge(u, v, c)
            dn.add_edge(u, v, c)
        assert et.max_flow(0, n - 1) == dn.max_flow(0, n - 1)

    def test_matches_networkx(self):
        for seed in range(8):
            n, edges = _random_network(seed, n=9, m=20)
            et = EvenTarjan(n)
            nxg = nx.DiGraph()
            nxg.add_nodes_from(range(n))
            for u, v, c in edges:
                et.add_edge(u, v, c)
                if nxg.has_edge(u, v):
                    nxg[u][v]["capacity"] += c
                else:
                    nxg.add_edge(u, v, capacity=c)
            assert et.max_flow(0, n - 1) == nx.maximum_flow_value(nxg, 0, n - 1)
