"""Tests for vertex-split networks (Menger counting + virtual vertices)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, ParameterError
from repro.flow import VertexSplitNetwork
from repro.graph import Graph, clique_graph, community_graph, random_gnm
from tests.conftest import to_networkx


def path_graph(n: int) -> Graph:
    return Graph.from_edges((i, i + 1) for i in range(n - 1))


class TestConstruction:
    def test_members_default_to_all(self):
        net = VertexSplitNetwork(clique_graph(4))
        assert net.size == 4

    def test_member_subset(self):
        g = clique_graph(6)
        net = VertexSplitNetwork(g, members={0, 1, 2})
        assert net.size == 3
        assert not net.contains(5)

    def test_missing_member_raises(self):
        with pytest.raises(GraphError):
            VertexSplitNetwork(clique_graph(3), members={0, 99})

    def test_virtual_collision_raises(self):
        g = clique_graph(3)
        with pytest.raises(ParameterError):
            VertexSplitNetwork(g, virtual_sources={0: [1]})

    def test_virtual_attach_outside_members_raises(self):
        g = clique_graph(4)
        with pytest.raises(ParameterError):
            VertexSplitNetwork(
                g, members={0, 1}, virtual_sources={"sigma": [3]}
            )


class TestFlowCounting:
    def test_path_has_one_disjoint_path(self):
        net = VertexSplitNetwork(path_graph(5))
        assert net.max_flow(0, 4) == 1

    def test_cycle_count(self):
        # In C6, opposite vertices have exactly 2 disjoint paths.
        g = Graph.from_edges((i, (i + 1) % 6) for i in range(6))
        net = VertexSplitNetwork(g)
        assert net.max_flow(0, 3) == 2

    def test_adjacent_pair_rejected(self):
        net = VertexSplitNetwork(clique_graph(5))
        with pytest.raises(ParameterError):
            net.max_flow(0, 4)

    def test_repeated_queries_are_reset(self):
        g = Graph.from_edges((i, (i + 1) % 6) for i in range(6))
        net = VertexSplitNetwork(g)
        first = net.max_flow(0, 3)
        second = net.max_flow(0, 3)
        assert first == second == 2

    def test_cutoff(self):
        g = Graph.from_edges((i, (i + 1) % 8) for i in range(8))
        net = VertexSplitNetwork(g)
        assert net.max_flow(0, 4, cutoff=1) == 1

    def test_subset_restricts_paths(self):
        g = Graph.from_edges((i, (i + 1) % 6) for i in range(6))
        net = VertexSplitNetwork(g, members={0, 1, 2, 3})
        assert net.max_flow(0, 3) == 1  # only the 0-1-2-3 side remains

    def test_same_endpoints_raise(self):
        net = VertexSplitNetwork(clique_graph(3))
        with pytest.raises(ParameterError):
            net.max_flow(1, 1)

    def test_unknown_endpoint_raises(self):
        net = VertexSplitNetwork(clique_graph(3))
        with pytest.raises(ParameterError):
            net.max_flow(0, "nope")

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_nonadjacent_flow_equals_networkx_connectivity(self, seed):
        g = random_gnm(14, 30, seed=seed)
        nxg = to_networkx(g)
        net = VertexSplitNetwork(g)
        pairs = [
            (u, v)
            for u in g.vertices()
            for v in g.vertices()
            if u < v and not g.has_edge(u, v)
        ][:6]
        for u, v in pairs:
            assert net.max_flow(u, v) == nx.connectivity.local_node_connectivity(
                nxg, u, v
            )


class TestVirtualVertices:
    def test_sigma_adjacent_to_seed(self):
        g = clique_graph(5)
        net = VertexSplitNetwork(
            g, members=g.vertex_set(), virtual_sources={"sigma": [0, 1, 2]}
        )
        assert net.contains("sigma")
        assert net.adjacent("sigma", 0)
        assert not net.adjacent("sigma", 4)

    def test_flow_to_sigma_counts_disjoint_paths_into_seed(self):
        # Star-like: candidate u attaches to 3 members of a K4 seed.
        g = clique_graph(4)
        g.add_edge("u", 0)
        g.add_edge("u", 1)
        g.add_edge("u", 2)
        net = VertexSplitNetwork(
            g, virtual_sources={"sigma": [0, 1, 2, 3]}
        )
        assert net.max_flow("u", "sigma") == 3


class TestLocalConnectivityPredicate:
    def test_adjacent_always_true(self):
        net = VertexSplitNetwork(path_graph(3))
        assert net.local_connectivity_at_least(0, 1, 999)

    def test_threshold(self):
        net = VertexSplitNetwork(clique_graph(5))
        g_net = net
        assert g_net.local_connectivity_at_least(0, 4, 4)

    def test_nonpositive_k_true(self):
        net = VertexSplitNetwork(path_graph(4))
        assert net.local_connectivity_at_least(0, 3, 0)


class TestVertexCuts:
    def test_min_cut_of_path(self):
        net = VertexSplitNetwork(path_graph(5))
        cut = net.min_vertex_cut(0, 4)
        assert len(cut) == 1
        assert cut < {1, 2, 3}

    def test_min_cut_adjacent_raises(self):
        net = VertexSplitNetwork(clique_graph(3))
        with pytest.raises(ParameterError):
            net.min_vertex_cut(0, 1)

    def test_cut_if_below_none_when_connected_enough(self):
        net = VertexSplitNetwork(clique_graph(6))
        assert net.vertex_cut_if_below(0, 5, 3) is None

    def test_cut_if_below_finds_cut(self):
        g = community_graph([8, 8], k=3, seed=0, bridge_width=2)
        net = VertexSplitNetwork(g)
        source, sink = 0, 15
        cut = net.vertex_cut_if_below(source, sink, 3)
        assert cut is not None
        assert len(cut) < 3
        # Removing the cut really separates source from sink.
        rest = g.vertex_set() - cut
        assert source in rest and sink in rest
        sub = g.subgraph(rest)
        from repro.graph import component_of

        assert sink not in component_of(sub, source)

    def test_cut_separates_on_random_graphs(self):
        from repro.graph import component_of

        for seed in range(5):
            g = random_gnm(16, 26, seed=seed)
            net = VertexSplitNetwork(g)
            pairs = [
                (u, v)
                for u in g.vertices()
                for v in g.vertices()
                if u < v and not g.has_edge(u, v)
            ]
            for u, v in pairs[:4]:
                flow = net.max_flow(u, v)
                if flow == 0:
                    continue
                cut = net.min_vertex_cut(u, v)
                assert len(cut) == flow
                sub = g.subgraph(g.vertex_set() - cut)
                assert v not in component_of(sub, u)


class TestDisableEnable:
    """disable_vertex/enable_vertex: flow-equivalent to a rebuild."""

    def test_disable_removes_vertex_from_flows(self):
        # C6: disabling one side of the cycle leaves κ(0, 3) = 1.
        g = Graph.from_edges(
            [(i, (i + 1) % 6) for i in range(6)]
        )
        net = VertexSplitNetwork(g)
        assert net.max_flow(0, 3) == 2
        net.disable_vertex(1)
        assert net.max_flow(0, 3) == 1
        assert net.is_disabled(1)

    def test_round_trip_restores_flow(self):
        # In K6 every pair is adjacent, so compare flows through σ.
        g = clique_graph(6)
        net = VertexSplitNetwork(g, virtual_sources={"s": [0, 1]})
        net.disable_vertex(2)
        net.disable_vertex(3)
        net.enable_vertex(2)
        net.enable_vertex(3)
        fresh = VertexSplitNetwork(g, virtual_sources={"s": [0, 1]})
        assert net.max_flow(5, "s") == fresh.max_flow(5, "s")
        assert not net.is_disabled(2)

    def test_shared_arc_out_of_order_round_trip(self):
        # Disable two adjacent vertices (their joining arcs are shared
        # bookkeeping) and re-enable in the same order — the shared
        # arcs must come back only when the *second* enable lands.
        g = clique_graph(5)
        net = VertexSplitNetwork(g, virtual_sources={"s": [0]})
        baseline = net.max_flow(4, "s")
        net.disable_vertex(1)
        net.disable_vertex(2)
        net.enable_vertex(1)
        # 2 still disabled: its shared arc with 1 must stay closed.
        partial = net.max_flow(4, "s")
        fresh_minus_2 = VertexSplitNetwork(
            g, members=g.vertex_set() - {2}, virtual_sources={"s": [0]}
        )
        assert partial == fresh_minus_2.max_flow(4, "s")
        net.enable_vertex(2)
        assert net.max_flow(4, "s") == baseline

    def test_query_rejects_disabled_endpoint(self):
        net = VertexSplitNetwork(path_graph(5))
        net.disable_vertex(4)
        with pytest.raises(ParameterError):
            net.max_flow(0, 4)

    def test_double_disable_raises(self):
        net = VertexSplitNetwork(path_graph(4))
        net.disable_vertex(2)
        with pytest.raises(ParameterError):
            net.disable_vertex(2)

    def test_enable_without_disable_raises(self):
        net = VertexSplitNetwork(path_graph(4))
        with pytest.raises(ParameterError):
            net.enable_vertex(2)

    def test_disable_unknown_vertex_raises(self):
        net = VertexSplitNetwork(path_graph(4))
        with pytest.raises(ParameterError):
            net.disable_vertex(99)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_disable_matches_rebuild_on_random_graphs(self, seed):
        g = random_gnm(12, 30, seed=seed % 1000)
        members = g.vertex_set()
        net = VertexSplitNetwork(g, virtual_sources={"s": [0, 1]})
        import random as _random

        rng = _random.Random(seed)
        removable = sorted(members - {0, 1})
        dropped = rng.sample(removable, 3)
        for u in dropped:
            net.disable_vertex(u)
        rebuilt = VertexSplitNetwork(
            g, members=members - set(dropped), virtual_sources={"s": [0, 1]}
        )
        for u in sorted(members - set(dropped) - {0, 1}):
            assert net.max_flow(u, "s") == rebuilt.max_flow(u, "s")
