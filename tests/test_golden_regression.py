"""Golden regression tests: pinned end-to-end numbers per dataset.

Everything in this repository is deterministic (seeded generators, no
randomness in the algorithms), so the exact component counts and
accuracy scores at each dataset's default k are stable facts of the
codebase. Pinning them catches silent behaviour drift anywhere in the
stack — a changed generator, a changed expansion rule, a changed
metric — that the property tests might tolerate.

If a deliberate change shifts these numbers, regenerate the table with
the snippet in this file's git history (or the bench harness) and
update the constants *together with* the EXPERIMENTS.md narrative.
"""

import pytest

from repro.core import ripple, vcce_bu, vcce_td
from repro.datasets import DATASETS
from repro.metrics import accuracy_report

# (dataset, default_k, exact components,
#  RIPPLE F_same, RIPPLE J_Index, VCCE-BU F_same, VCCE-BU J_Index)
GOLDEN = [
    ("ca-condmat", 4, 7, 91.01, 87.86, 90.19, 85.46),
    ("uk-2005", 7, 3, 100.0, 100.0, 100.0, 100.0),
    ("arabic-2005", 4, 4, 100.0, 100.0, 100.0, 100.0),
    ("sc-shipsec", 4, 4, 100.0, 100.0, 63.66, 26.25),
    ("ca-citeseer", 4, 6, 92.53, 89.28, 92.05, 87.94),
    ("ca-dblp", 4, 5, 95.3, 89.01, 93.56, 84.14),
    ("ca-mathscinet", 4, 3, 52.54, 2.87, 52.54, 2.87),
    ("it-2004", 6, 2, 100.0, 100.0, 100.0, 100.0),
    ("cit-patent", 4, 1, 99.33, 97.37, 98.66, 94.78),
    ("socfb-konect", 4, 2, 100.0, 100.0, 80.17, 50.41),
]


@pytest.mark.parametrize(
    "name,k,td_count,rp_f,rp_j,bu_f,bu_j",
    GOLDEN,
    ids=[row[0] for row in GOLDEN],
)
def test_golden_accuracy(name, k, td_count, rp_f, rp_j, bu_f, bu_j):
    dataset = DATASETS[name]
    assert dataset.default_k == k
    graph = dataset.graph()
    exact = vcce_td(graph, k)
    assert exact.num_components == td_count

    rp = accuracy_report(ripple(graph, k).components, exact.components)
    bu = accuracy_report(vcce_bu(graph, k).components, exact.components)
    assert rp["F_same"] == pytest.approx(rp_f, abs=0.01)
    assert rp["J_Index"] == pytest.approx(rp_j, abs=0.01)
    assert bu["F_same"] == pytest.approx(bu_f, abs=0.01)
    assert bu["J_Index"] == pytest.approx(bu_j, abs=0.01)
