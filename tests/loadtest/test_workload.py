"""Schedules: seeded determinism, arrival processes, mix plumbing."""

import pytest

from repro.errors import ParameterError
from repro.loadtest import SCENARIOS, Scenario, build_schedule, get_scenario
from repro.loadtest.workload import STORM_VERTEX_BASE

VERTICES = list(range(20))


def _scenario(**overrides):
    kwargs = dict(
        name="unit",
        mix=(("point", 1.0),),
        offered_rps=100.0,
        duration_s=1.0,
        warmup_s=0.2,
        seed=5,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        scenario = _scenario()
        assert build_schedule(scenario, VERTICES) == build_schedule(
            scenario, VERTICES
        )

    def test_reseeding_changes_the_stream(self):
        scenario = _scenario()
        other = scenario.with_overrides(seed=scenario.seed + 1)
        assert build_schedule(scenario, VERTICES) != build_schedule(
            other, VERTICES
        )


class TestArrivals:
    def test_offsets_increase_and_stay_inside_the_run(self):
        schedule = build_schedule(_scenario(), VERTICES)
        offsets = [r.offset_s for r in schedule]
        assert offsets == sorted(offsets)
        assert all(0 < t < 1.0 for t in offsets)

    def test_uniform_arrivals_have_fixed_gaps(self):
        schedule = build_schedule(
            _scenario(arrival="uniform", offered_rps=10.0), VERTICES
        )
        gaps = [
            b.offset_s - a.offset_s
            for a, b in zip(schedule, schedule[1:])
        ]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_rate_sets_the_expected_count(self):
        # Uniform spacing is exact: 100 rps over 1 s less the first gap.
        schedule = build_schedule(_scenario(arrival="uniform"), VERTICES)
        assert len(schedule) == 99


class TestMix:
    def test_single_kind_mix_is_pure(self):
        schedule = build_schedule(_scenario(), VERTICES)
        assert {r.kind for r in schedule} == {"point"}

    def test_kinds_drawn_only_from_the_mix(self):
        scenario = _scenario(
            mix=(("point", 0.5), ("batch", 0.3), ("unknown", 0.2))
        )
        kinds = {r.kind for r in build_schedule(scenario, VERTICES)}
        assert kinds <= {"point", "batch", "unknown"}
        assert len(kinds) > 1  # at 100 requests, all-one-kind ~ never

    def test_payload_vertices_come_from_the_served_set(self):
        for request in build_schedule(_scenario(), VERTICES):
            assert request.payload["v"] in VERTICES
            assert 1 <= request.payload["k"] <= 4

    def test_unknown_probes_expect_the_error(self):
        scenario = _scenario(mix=(("unknown", 1.0),))
        schedule = build_schedule(scenario, VERTICES)
        assert all(r.expect == "unknown-vertex" for r in schedule)
        assert all(r.payload["v"] not in VERTICES for r in schedule)

    def test_scan_sweeps_every_k(self):
        scenario = _scenario(mix=(("scan", 1.0),), max_k=3)
        request = build_schedule(scenario, VERTICES)[0]
        assert [q["k"] for q in request.payload["queries"]] == [1, 2, 3]
        assert len({q["v"] for q in request.payload["queries"]}) == 1

    def test_storm_mutations_are_fresh_pendant_edges(self):
        scenario = _scenario(
            mix=(("storm", 1.0),), offered_rps=20.0
        )
        schedule = build_schedule(scenario, VERTICES, graph_anchor=7)
        lines = [r.mutate_append for r in schedule]
        assert all(r.payload == {"op": "reload"} for r in schedule)
        assert len(set(lines)) == len(lines)  # serials never repeat
        for line in lines:
            fresh, anchor = line.split()
            assert int(fresh) > STORM_VERTEX_BASE
            assert anchor == "7"


class TestValidation:
    def test_empty_vertex_set_rejected(self):
        with pytest.raises(ParameterError, match="zero vertices"):
            build_schedule(_scenario(), [])

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mix": ()},
            {"mix": (("nope", 1.0),)},
            {"mix": (("point", -1.0),)},
            {"offered_rps": 0.0},
            {"duration_s": -1.0},
            {"warmup_s": 2.0},  # >= duration_s
            {"workers": 0},
            {"repetitions": 0},
            {"arrival": "bursty"},
            {"batch_size": 0},
            {"max_k": 0},
        ],
    )
    def test_bad_scenario_fields_rejected(self, overrides):
        with pytest.raises(ParameterError):
            _scenario(**overrides)

    def test_builtin_library(self):
        assert set(SCENARIOS) == {
            "point",
            "mixed",
            "errors",
            "storm",
            "smoke",
            "degrade",
            "chaos",
            "sharded",
        }
        smoke = get_scenario("smoke")
        assert "storm" not in {kind for kind, _ in smoke.mix}
        with pytest.raises(ParameterError, match="unknown scenario"):
            get_scenario("hurricane")
