"""The run table: glossary lockstep, determinism, failure taxonomy."""

import math
import re
from pathlib import Path

import pytest

from repro.errors import ParameterError
from repro.loadtest import (
    COLUMNS,
    OUTCOMES,
    Sample,
    aggregate,
    read_run_table,
    write_run_table,
)
from repro.loadtest.run_table import COUNTER_COLUMNS, percentile

DOCS_GLOSSARY = (
    Path(__file__).resolve().parents[2] / "docs" / "loadtest.md"
)


def _documented_columns() -> tuple[str, ...]:
    """The backticked first-column names of the docs glossary table."""
    text = DOCS_GLOSSARY.read_text(encoding="utf-8")
    _, _, section = text.partition("### Column glossary")
    assert section, "docs/loadtest.md lost its '### Column glossary' heading"
    names = []
    for line in section.splitlines():
        match = re.match(r"\| `(\w+)` \|", line)
        if match:
            names.append(match.group(1))
        elif names and not line.startswith("|"):
            break  # table ended
    return tuple(names)


def _samples() -> list[Sample]:
    return [
        # Warmup: excluded from every aggregate.
        Sample("point", 0.1, 9000.0, "ok", warmup=True),
        # Measured successes, including an *expected* error response.
        Sample("point", 0.6, 1.0, "ok"),
        Sample("point", 0.7, 2.0, "ok"),
        Sample("unknown", 0.8, 3.0, "ok", code="unknown-vertex"),
        Sample("batch", 0.9, 4.0, "ok"),
        # One of each failure class.
        Sample("point", 1.0, 50.0, "deadline", code="client-timeout"),
        Sample("point", 1.1, 0.0, "protocol-error", code="internal"),
        Sample("point", 1.2, 0.0, "connection-refused", code="eof"),
    ]


def _row(**overrides):
    kwargs = dict(
        scenario="unit",
        repetition=1,
        topology="toy",
        workers=2,
        offered_rps=10.0,
        samples=_samples(),
        measure_window_s=2.0,
        calibration_s=0.02,
        counters={"serving.requests": 7, "serving.queries": 5},
    )
    kwargs.update(overrides)
    return aggregate(**kwargs)


class TestGlossaryLockstep:
    def test_docs_table_matches_columns_exactly(self):
        assert _documented_columns() == COLUMNS

    def test_counter_columns_are_all_in_columns(self):
        assert set(COUNTER_COLUMNS) <= set(COLUMNS)


class TestTaxonomy:
    def test_each_failure_class_lands_in_its_own_column(self):
        row = _row()
        assert row.failures_deadline == 1
        assert row.failures_protocol == 1
        assert row.failures_connection == 1
        assert row.failure_rate == pytest.approx(3 / 7)

    def test_expected_error_counts_as_ok(self):
        row = _row()
        # 4 ok samples (one of them the unknown-vertex probe) over the
        # 2-second window.
        assert row.achieved_rps == pytest.approx(4 / 2.0)

    def test_warmup_excluded_from_aggregates(self):
        row = _row()
        assert row.request_count == 7  # the 9-second warmup outlier
        assert row.avg_latency_ms < 9000.0 / 4

    def test_latency_percentiles_over_ok_samples_only(self):
        row = _row()
        assert row.p50_latency_ms == 2.0
        assert row.p99_latency_ms == 4.0

    def test_counters_fold_into_their_columns(self):
        row = _row()
        assert row.serving_requests == 7
        assert row.serving_queries == 5
        assert row.serving_index_stale_rebuilds == 0

    def test_sample_rejects_unknown_outcome(self):
        with pytest.raises(ParameterError, match="outcome"):
            Sample("point", 0.0, 1.0, "exploded")
        assert OUTCOMES == (
            "ok",
            "deadline",
            "protocol-error",
            "connection-refused",
            "shed",
        )


class TestWriter:
    def test_header_is_exactly_columns(self, tmp_path):
        path = tmp_path / "run_table.csv"
        write_run_table(path, [_row()])
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert header == ",".join(COLUMNS)

    def test_writing_same_rows_is_byte_identical(self, tmp_path):
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        rows = [_row(), _row(repetition=2)]
        write_run_table(first, rows)
        write_run_table(second, rows)
        assert first.read_bytes() == second.read_bytes()

    def test_roundtrip_preserves_values(self, tmp_path):
        path = tmp_path / "run_table.csv"
        row = _row()
        write_run_table(path, [row])
        (read,) = read_run_table(path)
        assert read.scenario == row.scenario
        assert read.request_count == row.request_count
        assert read.failure_rate == pytest.approx(row.failure_rate)
        assert read.p95_latency_ms == pytest.approx(
            row.p95_latency_ms, abs=1e-3
        )
        assert read.serving_requests == row.serving_requests

    def test_nan_resources_serialise_as_empty_cells(self, tmp_path):
        path = tmp_path / "run_table.csv"
        write_run_table(path, [_row(cpu_usage_avg=float("nan"))])
        record = path.read_text(encoding="utf-8").splitlines()[1]
        cells = dict(zip(COLUMNS, record.split(",")))
        assert cells["cpu_usage_avg"] == ""
        (read,) = read_run_table(path)
        assert math.isnan(read.cpu_usage_avg)

    def test_reader_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b,c\n1,2,3\n", encoding="utf-8")
        with pytest.raises(ParameterError, match="header"):
            read_run_table(path)

    def test_server_telemetry_columns_round_trip(self, tmp_path):
        path = tmp_path / "run_table.csv"
        row = _row(server_p95_ms=4.257, server_shed=3)
        write_run_table(path, [row])
        (read,) = read_run_table(path)
        assert read.server_p95_ms == pytest.approx(4.257, abs=1e-3)
        assert read.server_shed == 3

    def test_missing_server_p95_serialises_as_an_empty_cell(self, tmp_path):
        # The default: no daemon stats were captured (external target,
        # lost window snapshot) — the cell stays empty, not "nan".
        path = tmp_path / "run_table.csv"
        write_run_table(path, [_row()])
        record = path.read_text(encoding="utf-8").splitlines()[1]
        cells = dict(zip(COLUMNS, record.split(",")))
        assert cells["server_p95_ms"] == ""
        assert cells["server_shed"] == "0"
        (read,) = read_run_table(path)
        assert math.isnan(read.server_p95_ms)


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 10.0
        assert percentile(values, 0.01) == 1.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))
