"""The client's shed classification, retry budget, and backoff."""

import json
import random
import socket
import threading
import time

from repro.loadtest.client import (
    _classify,
    _Connection,
    _retriable,
    request_once,
    request_with_retries,
)
from repro.loadtest.run_table import Sample
from repro.loadtest.scenario import Scenario
from repro.loadtest.workload import Request

POINT = Request(offset_s=0.0, kind="point", payload={"op": "query",
                                                     "v": 0, "k": 2})

OVERLOADED = json.dumps(
    {
        "ok": False,
        "error": "overloaded",
        "code": "overloaded",
        "retriable": True,
        "retry_after_ms": 10,
    }
)
OK = json.dumps({"ok": True, "op": "query", "components": [[0, 1]]})


def _scenario(**overrides):
    kwargs = dict(
        name="unit",
        mix=(("point", 1.0),),
        offered_rps=10.0,
        duration_s=1.0,
        warmup_s=0.1,
        retry_budget=3,
        backoff_base_ms=1.0,
        backoff_cap_ms=4.0,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def _script_server(responses: list[str]):
    """A one-connection server answering each request line from a
    script (empty string = hang up instead of answering)."""
    listener = socket.create_server(("127.0.0.1", 0))
    address = listener.getsockname()

    def run():
        conn, _ = listener.accept()
        stream = conn.makefile("rw", encoding="utf-8", newline="\n")
        for scripted in responses:
            if not stream.readline():
                break
            if not scripted:
                break
            stream.write(scripted + "\n")
            stream.flush()
        conn.close()
        listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return address, thread


class TestClassify:
    def test_overloaded_is_shed_with_the_hint(self):
        sample, hint = _classify(POINT, OVERLOADED)
        assert sample.outcome == "shed"
        assert sample.code == "overloaded"
        assert hint == 10.0

    def test_overloaded_sheds_even_expected_error_probes(self):
        probe = Request(
            offset_s=0.0,
            kind="unknown",
            payload={"op": "query", "v": 10**9, "k": 2},
            expect="unknown-vertex",
        )
        sample, _ = _classify(probe, OVERLOADED)
        assert sample.outcome == "shed"

    def test_ok_and_expected_error_still_classify(self):
        sample, hint = _classify(POINT, OK)
        assert sample.outcome == "ok" and hint is None


class TestRetriable:
    def _sample(self, outcome, code=""):
        return Sample("point", 0.0, 1.0, outcome, code=code)

    def test_shed_dropped_and_undecodable_are_retriable(self):
        assert _retriable(self._sample("shed", "overloaded"))
        assert _retriable(self._sample("connection-refused", "eof"))
        assert _retriable(self._sample("protocol-error", "undecodable"))

    def test_timeouts_and_real_errors_are_not(self):
        assert not _retriable(self._sample("deadline", "client-timeout"))
        assert not _retriable(self._sample("protocol-error", "internal"))
        assert not _retriable(self._sample("ok"))


class TestRetries:
    def test_shed_then_ok_succeeds_with_one_retry(self):
        address, thread = _script_server([OVERLOADED, OK])
        connection = _Connection(address)
        sample = request_with_retries(
            connection,
            POINT,
            time.monotonic(),
            _scenario(),
            random.Random(7),
        )
        connection.close()
        thread.join(timeout=10)
        assert sample.outcome == "ok"
        assert sample.retries == 1

    def test_budget_exhaustion_keeps_the_shed_outcome(self):
        address, thread = _script_server([OVERLOADED] * 4)
        connection = _Connection(address)
        sample = request_with_retries(
            connection,
            POINT,
            time.monotonic(),
            _scenario(retry_budget=3),
            random.Random(7),
        )
        connection.close()
        thread.join(timeout=10)
        assert sample.outcome == "shed"
        assert sample.retries == 3

    def test_zero_budget_never_retries(self):
        address, thread = _script_server([OVERLOADED, OK])
        connection = _Connection(address)
        sample = request_once(connection, POINT, time.monotonic())
        connection.close()
        thread.join(timeout=10)
        assert sample.outcome == "shed"
        assert sample.retries == 0

    def test_latency_charges_the_backoff_to_the_schedule(self):
        # Scheduled "in the past": the final latency must cover the
        # whole shed + backoff + retry interval, open-loop style.
        address, thread = _script_server([OVERLOADED, OK])
        connection = _Connection(address)
        scheduled_at = time.monotonic()
        sample = request_with_retries(
            connection,
            POINT,
            scheduled_at,
            _scenario(backoff_base_ms=20.0, backoff_cap_ms=20.0),
            random.Random(7),
        )
        connection.close()
        thread.join(timeout=10)
        assert sample.outcome == "ok"
        assert sample.latency_ms >= 10.0  # at least the jittered wait
