"""End-to-end harness runs: in-process, subprocess, storms, the gate."""

import os

import pytest

from repro import obs
from repro.bench.perfgate import compare_load_table
from repro.graph.generators import planted_kvcc_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.loadtest import (
    DaemonProcess,
    LoadTestError,
    get_scenario,
    run_scenario,
)
from repro.loadtest.client import drive
from repro.loadtest.workload import build_schedule
from repro.resilience import Deadline
from repro.serving import QueryEngine, serve_tcp


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "served.edges"
    write_edge_list(planted_kvcc_graph(2, 10, 3, seed=3), path)
    return path


def _quick(name="point", **overrides):
    defaults = dict(
        offered_rps=40.0,
        duration_s=0.8,
        warmup_s=0.2,
        workers=2,
        repetitions=1,
    )
    defaults.update(overrides)
    return get_scenario(name).with_overrides(**defaults)


class TestInProcess:
    """Drive an in-process ``serve_tcp`` (no subprocess spawn cost)."""

    def test_run_scenario_produces_a_clean_row(self, graph_file):
        graph = read_edge_list(graph_file, allow_self_loops=True)
        with obs.collecting():
            with serve_tcp(QueryEngine(graph), background=True) as handle:
                outcome = run_scenario(
                    _quick("mixed"),
                    graph_file,
                    topology="planted-2x10-k3",
                    calibration_s=0.02,
                    address=handle.address,
                    monitor_pid=os.getpid(),
                )
        assert outcome.status == "completed"
        (row,) = outcome.rows
        assert row.scenario == "mixed"
        assert row.topology == "planted-2x10-k3"
        assert row.failure_rate == 0.0
        assert row.request_count > 0
        assert row.achieved_rps > 0
        assert row.p95_latency_ms >= row.p50_latency_ms > 0
        # The stats op folded the daemon's counter deltas into the row.
        assert row.serving_requests >= row.request_count
        assert row.serving_queries > 0
        # /proc is live on Linux CI; both resource columns populate.
        assert row.cpu_usage_avg == row.cpu_usage_avg
        assert row.rss_peak_mb > 0
        assert outcome.samples[1]  # raw samples kept per repetition

    def test_repetitions_reseed_but_reruns_reproduce(self, graph_file):
        graph = read_edge_list(graph_file, allow_self_loops=True)
        scenario = _quick(repetitions=2, duration_s=0.5, warmup_s=0.1)
        with obs.collecting():
            with serve_tcp(QueryEngine(graph), background=True) as handle:
                outcome = run_scenario(
                    scenario,
                    graph_file,
                    calibration_s=0.02,
                    address=handle.address,
                )
        first, second = outcome.rows
        assert (first.repetition, second.repetition) == (1, 2)
        # Different seeds -> different Poisson draws.
        assert first.request_count != second.request_count or (
            outcome.samples[1][0].scheduled_s
            != outcome.samples[2][0].scheduled_s
        )

    def test_expired_deadline_short_circuits(self, graph_file):
        outcome = run_scenario(
            _quick(),
            graph_file,
            calibration_s=0.02,
            address=("127.0.0.1", 1),  # never dialled
            deadline=Deadline(0),
        )
        assert outcome.status == "deadline"
        assert outcome.rows == []

    def test_server_and_client_p95_agree_on_a_fault_free_run(
        self, graph_file
    ):
        # The telemetry cross-check the CI gate relies on: the daemon's
        # own serving.handle_seconds p95 must track the client-observed
        # p95. The client figure is strictly larger (it includes the
        # network round trip and client-side scheduling), so agreement
        # is within a tolerance plus a fixed slack, not equality.
        graph = read_edge_list(graph_file, allow_self_loops=True)
        scenario = _quick(duration_s=1.0, warmup_s=0.2)
        with obs.collecting():
            with serve_tcp(QueryEngine(graph), background=True) as handle:
                outcome = run_scenario(
                    scenario,
                    graph_file,
                    calibration_s=0.02,
                    address=handle.address,
                )
        (row,) = outcome.rows
        assert row.server_p95_ms == row.server_p95_ms  # populated, not NaN
        assert row.server_p95_ms > 0
        assert row.server_shed == 0
        gate = {
            "schema": "repro.loadgate/1",
            "scenario": scenario.name,
            "calibration_s": 0.02,
            "p95_ceiling_ms": 10_000.0,
            "rps_floor": 0.01,
            "max_failure_rate": 0.0,
            "server_p95_tolerance": 0.2,
            "server_p95_slack_ms": 3.0,
        }
        verdict = compare_load_table(outcome.rows, gate)
        assert verdict["ok"], verdict["failures"]
        # A gate that demands the impossible (zero tolerance, zero
        # slack) flags the telemetry check by name.
        strict = dict(gate, server_p95_tolerance=0.0, server_p95_slack_ms=0.0)
        verdict = compare_load_table(outcome.rows, strict)
        assert not verdict["ok"]
        assert any("server p95" in failure for failure in verdict["failures"])

    def test_gate_flags_a_missing_server_p95(self, graph_file):
        # Rows without daemon telemetry fail a gate that requires the
        # cross-check instead of silently passing it.
        from repro.loadtest.run_table import Sample, aggregate

        row = aggregate(
            scenario="point",
            repetition=1,
            topology="toy",
            workers=2,
            offered_rps=10.0,
            samples=[Sample("point", 0.1, 2.0, "ok")],
            measure_window_s=1.0,
            calibration_s=0.02,
        )
        gate = {
            "schema": "repro.loadgate/1",
            "scenario": "point",
            "calibration_s": 0.02,
            "p95_ceiling_ms": 10_000.0,
            "rps_floor": 0.01,
            "max_failure_rate": 1.0,
            "server_p95_tolerance": 0.2,
        }
        verdict = compare_load_table([row], gate)
        assert not verdict["ok"]
        assert any("missing" in failure for failure in verdict["failures"])

    def test_gate_passes_on_the_clean_row(self, graph_file):
        graph = read_edge_list(graph_file, allow_self_loops=True)
        scenario = _quick()
        with obs.collecting():
            with serve_tcp(QueryEngine(graph), background=True) as handle:
                outcome = run_scenario(
                    scenario,
                    graph_file,
                    calibration_s=0.02,
                    address=handle.address,
                )
        gate = {
            "schema": "repro.loadgate/1",
            "scenario": scenario.name,
            "calibration_s": 0.02,
            "p95_ceiling_ms": 10_000.0,
            "rps_floor": 0.01,
            "max_failure_rate": 0.0,
        }
        assert compare_load_table(outcome.rows, gate)["ok"]
        strict = dict(gate, p95_ceiling_ms=1e-9)
        verdict = compare_load_table(outcome.rows, strict)
        assert not verdict["ok"]
        assert any("p95" in failure for failure in verdict["failures"])


class TestFailurePaths:
    def test_dead_target_classifies_connection_refused(self, tmp_path):
        scenario = _quick(
            offered_rps=30.0, duration_s=0.3, warmup_s=0.0, workers=1
        )
        schedule = build_schedule(scenario, list(range(10)))
        samples, _ = drive(("127.0.0.1", 1), schedule, scenario)
        assert samples
        assert {s.outcome for s in samples} == {"connection-refused"}

    def test_daemon_that_never_binds_raises(self, tmp_path):
        missing = tmp_path / "nope.edges"
        daemon = DaemonProcess(missing)
        with pytest.raises(LoadTestError, match="listening"):
            daemon.start(timeout_s=30.0)
        daemon.stop()


class TestSubprocessStorm:
    """The real thing: spawned daemon, mid-run mutations, reloads."""

    @pytest.mark.slow
    def test_storm_run_rebuilds_and_restores_the_graph(self, graph_file):
        pristine = graph_file.read_bytes()
        scenario = _quick(
            "storm",
            offered_rps=30.0,
            duration_s=1.2,
            warmup_s=0.2,
            seed=11,
        )
        outcome = run_scenario(
            scenario, graph_file, calibration_s=0.02
        )
        (row,) = outcome.rows
        assert row.failure_rate == 0.0
        # At 30 rps x 1.2 s with 8% storm weight, at least one reload
        # fired (seed 11 is checked to draw storms), and each reload
        # forced a stale-index rebuild on the next query.
        assert row.serving_index_stale_rebuilds >= 1
        assert row.serving_requests > 0
        # Mutations never leak: the served file is byte-identical.
        assert graph_file.read_bytes() == pristine
