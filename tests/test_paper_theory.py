"""Empirical verification of the paper's lemmas and theorems.

Beyond testing the implementation, this module tests the *theory* the
implementation rests on, on randomized instances:

* Lemma 1 — local k-connectivity is transitive through a side-vertex;
* Lemma 3 — a vertex k-connected to an interior seed vertex is
  k-connected to the whole seed;
* Theorem 1 — the virtual-σ flow condition certifies joint expansion;
* Theorem 2 — unrestricted ME yields the unique maximal k-connected
  superset;
* Theorem 3 — the σ→τ flow condition certifies merging;
* Theorem 4's gap — the paper's clique-absorption conditions alone
  admit unsound instances (the distinct-representatives corner case),
  which is exactly why :func:`ring_expansion` runs the strengthened
  matching check. We construct the counterexample explicitly.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expansion import SIGMA, multiple_expansion
from repro.core.merging import flow_based_merge_condition
from repro.core.result import PhaseTimer
from repro.flow import (
    VertexSplitNetwork,
    is_k_vertex_connected,
    is_side_vertex,
    local_connectivity,
)
from repro.graph import Graph, clique_graph, community_graph, random_gnm


def connected_pairs_at_least(graph, k):
    """All vertex pairs (a, b) with κ(a, b) ≥ k (adjacency counts as ∞)."""
    pairs = []
    vertices = sorted(graph.vertices(), key=repr)
    for i, a in enumerate(vertices):
        for b in vertices[i + 1:]:
            if local_connectivity(graph, a, b) >= k:
                pairs.append((a, b))
    return pairs


class TestLemma1Transitivity:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_transitivity_through_side_vertex(self, seed):
        k = 3
        graph = random_gnm(12, 30, seed=seed)
        side_vertices = [
            v for v in graph.vertices() if is_side_vertex(graph, v, k)
        ]
        for v in side_vertices[:3]:
            linked = [
                u
                for u in graph.vertices()
                if u != v and local_connectivity(graph, u, v) >= k
            ]
            for i, u in enumerate(linked):
                for w in linked[i + 1:]:
                    assert local_connectivity(graph, u, w) >= k, (
                        f"transitivity through side-vertex {v} failed "
                        f"for ({u}, {w})"
                    )


class TestLemma3InteriorVertex:
    def test_interior_seed_vertex_extends_to_whole_seed(self):
        # S = K6 plus an outside vertex u with 3 disjoint paths to an
        # interior vertex: u must be 3-connected to all of S.
        k = 3
        graph = clique_graph(6)
        graph.add_edge("u", 0)
        graph.add_edge("u", 1)
        graph.add_edge("u", 2)
        seed = set(range(6))
        interior = 5  # all its neighbours are inside S
        assert graph.neighbors(interior) <= seed
        assert local_connectivity(graph, "u", interior) >= k
        for v in seed:
            assert local_connectivity(graph, "u", v) >= k


class TestTheorem1VirtualVertexExpansion:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_sigma_flow_certifies_joint_expansion(self, seed):
        k = 3
        graph = community_graph([14], k=k, seed=seed, periphery_pairs=1)
        members = set(range(12))  # the core
        candidates = graph.vertex_set() - members
        network = VertexSplitNetwork(
            graph, members | candidates, virtual_sources={SIGMA: members}
        )
        if all(
            network.max_flow(u, SIGMA, cutoff=k) >= k for u in candidates
        ):
            assert is_k_vertex_connected(
                graph.subgraph(members | candidates), k
            )


class TestTheorem2MaximalExpansion:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=6, deadline=None)
    def test_me_result_contains_every_valid_extension(self, seed):
        import itertools

        k = 3
        graph = random_gnm(13, 34, seed=seed)
        # find a K4 seed if one exists
        from repro.graph import maximal_cliques_at_least

        clique = next(iter(maximal_cliques_at_least(graph, k + 1)), None)
        if clique is None:
            return
        seed_set = set(clique)
        grown = multiple_expansion(graph, k, seed_set, hops=None)
        # brute-force: every k-connected superset of the seed must be
        # inside the ME result
        outside = sorted(graph.vertex_set() - seed_set, key=repr)
        for size in (1, 2):
            for extra in itertools.combinations(outside, size):
                candidate = seed_set | set(extra)
                if is_k_vertex_connected(graph.subgraph(candidate), k):
                    assert candidate <= grown, (
                        f"valid extension {extra} escapes ME"
                    )


class TestTheorem3FlowBasedMerging:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=12, deadline=None)
    def test_sigma_tau_flow_certifies_merge(self, seed):
        k = 3
        # random overlapping k-connected sides inside one dense graph
        graph = random_gnm(16, 70, seed=seed)
        vertices = sorted(graph.vertices())
        side_a = set(vertices[:10])
        side_b = set(vertices[6:])
        if not (
            is_k_vertex_connected(graph.subgraph(side_a), k)
            and is_k_vertex_connected(graph.subgraph(side_b), k)
        ):
            return
        if flow_based_merge_condition(
            graph, k, side_a, side_b, PhaseTimer()
        ):
            assert is_k_vertex_connected(
                graph.subgraph(side_a | side_b), k
            )


class TestTheorem4Gap:
    def test_paper_conditions_admit_unsound_absorption(self):
        """The published Theorem 4 conditions alone are not sufficient.

        k=4, r=2: seed = K5; clique K = {u, a, b} (|K| = 3 = k+1-r ✓);
        anchors: u→{w1,w2}, a→{w1,w2}, b→{w3,w4}; |N_S(K)| = 4 ≥ k ✓.
        Both published conditions hold, yet u has only 3 disjoint paths
        into the seed: its own anchors are exhausted by a's anchors.
        """
        k = 4
        graph = clique_graph(5)  # seed {0..4}, w1..w4 = 0..3
        seed = set(range(5))
        for x, y in (
            ("u", "a"), ("u", "b"), ("a", "b"),  # the clique K
            ("u", 0), ("u", 1),
            ("a", 0), ("a", 1),
            ("b", 2), ("b", 3),
        ):
            graph.add_edge(x, y)
        clique = frozenset({"u", "a", "b"})
        anchors_union = set()
        for v in clique:
            anchors_union |= graph.neighbors(v) & seed
        # both published conditions hold…
        assert len(clique) >= k + 1 - 2
        assert len(anchors_union) >= k
        # …but the absorption would be unsound:
        assert not is_k_vertex_connected(graph.subgraph(seed | clique), k)
        # and the strengthened matching check correctly refuses it:
        from repro.core.expansion import _clique_absorbable

        assert not _clique_absorbable(graph, clique, seed, k)

    def test_matching_check_accepts_sound_instances(self):
        # same shape but with disjoint anchor sets: genuinely sound
        k = 4
        graph = clique_graph(7)  # bigger seed for distinct anchors
        seed = set(range(7))
        for x, y in (
            ("u", "a"), ("u", "b"), ("a", "b"),
            ("u", 0), ("u", 1),
            ("a", 2), ("a", 3),
            ("b", 4), ("b", 5),
        ):
            graph.add_edge(x, y)
        clique = frozenset({"u", "a", "b"})
        from repro.core.expansion import _clique_absorbable

        assert _clique_absorbable(graph, clique, seed, k)
        assert is_k_vertex_connected(
            graph.subgraph(seed | clique), k
        )


class TestAdjacencyConvention:
    def test_adjacent_pairs_infinitely_connected(self):
        g = Graph.from_edges([(0, 1)])
        assert local_connectivity(g, 0, 1) == math.inf
