"""Stress tests: the pipelines at several times benchmark scale.

These push beyond the registry's toy datasets to catch problems that
only show at size — recursion limits, quadratic blowups, memory
churn — while staying under a minute in total.
"""

import time

import pytest

from repro.core import ripple, vcce_hybrid
from repro.flow import is_k_vertex_connected
from repro.graph import (
    community_graph,
    planted_kvcc_graph,
    powerlaw_cluster_graph,
)
from repro.graph.kcore import k_core


@pytest.mark.slow
class TestLargePlanted:
    def test_ripple_on_1200_vertices(self):
        k = 4
        graph = planted_kvcc_graph(
            8, 150, k, seed=5, periphery_pairs=3, bridge_width=2,
            noise_vertices=60,
        )
        assert graph.num_vertices == 1260
        start = time.perf_counter()
        result = ripple(graph, k)
        elapsed = time.perf_counter() - start
        assert elapsed < 30, f"RIPPLE took {elapsed:.1f}s"
        assert result.num_components == 8
        assert len(result.covered_vertices()) == 8 * 150
        # spot-check soundness on the largest component
        biggest = result.components[0]
        assert is_k_vertex_connected(graph.subgraph(biggest), k)

    def test_hybrid_on_wide_graph(self):
        k = 3
        graph = community_graph(
            [120] * 6, k=k, seed=11, bridge_width=2
        )
        start = time.perf_counter()
        result = vcce_hybrid(graph, k)
        elapsed = time.perf_counter() - start
        assert elapsed < 30, f"hybrid took {elapsed:.1f}s"
        assert result.num_components == 6
        assert result.timer.counter("certifications_skipped") == 6

    def test_powerlaw_2000_vertices(self):
        k = 4
        graph = powerlaw_cluster_graph(
            2000, attach=4, triangle_prob=0.6, seed=13
        )
        start = time.perf_counter()
        result = ripple(graph, k)
        elapsed = time.perf_counter() - start
        assert elapsed < 45, f"RIPPLE took {elapsed:.1f}s"
        core = k_core(graph, k)
        assert result.covered_vertices() <= core.vertex_set()
        for comp in result.components[:2]:
            assert is_k_vertex_connected(graph.subgraph(comp), k)

    def test_deep_ring_no_recursion_issues(self):
        # one enormous clique ring: RME must walk ~1500 absorptions
        # without hitting any recursion limit (promote_neighbours is
        # iterative by design)
        k = 3
        graph = community_graph([1500], k=k, seed=17)
        result = ripple(graph, k)
        assert result.components == [frozenset(range(1500))]
