"""Execute every ```python fence in docs/*.md so the docs stay honest.

Each page's fences run in order in one shared namespace (later fences
may use names earlier ones defined), seeded with the small standing
context the prose assumes: a two-community graph bound to both ``g``
and ``graph``, ``k = 3``, and ``ripple`` imported. The working
directory is a tmpdir holding the ``my_graph.txt`` the tutorial loads.

A fence that genuinely cannot run (requires hardware, network, hours)
can be opted out by putting ``<!-- snippet: skip -->`` on the line
before it; no current fence needs this.
"""

import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
PAGES = sorted(DOCS.glob("*.md"))

PREAMBLE = """\
from repro import ripple
from repro.graph import community_graph

g = community_graph([10, 10], k=3, seed=1)
graph = g
k = 3
"""

#: The tutorial reads this SNAP-style file; an 8-clique keeps every
#: follow-on snippet (k=5 enumeration, disjoint 0->7 paths) meaningful.
MY_GRAPH = "\n".join(
    f"{u} {v}" for u in range(8) for v in range(u + 1, 8)
)

_FENCE = re.compile(r"(<!-- snippet: skip -->\s*)?```python\n(.*?)```", re.S)


def _python_fences(page: Path) -> list[str]:
    return [
        match.group(2)
        for match in _FENCE.finditer(page.read_text(encoding="utf-8"))
        if not match.group(1)
    ]


def test_docs_directory_has_pages():
    assert PAGES, f"no markdown pages under {DOCS}"


@pytest.mark.parametrize("page", PAGES, ids=lambda page: page.name)
def test_python_fences_run(page, tmp_path, monkeypatch):
    fences = _python_fences(page)
    if not fences:
        pytest.skip(f"{page.name} has no python fences")
    monkeypatch.chdir(tmp_path)
    (tmp_path / "my_graph.txt").write_text(MY_GRAPH + "\n", encoding="utf-8")
    namespace: dict = {}
    exec(compile(PREAMBLE, "<docs-preamble>", "exec"), namespace)
    for position, source in enumerate(fences):
        location = f"{page.name} python fence #{position}"
        try:
            exec(compile(source, location, "exec"), namespace)
        except Exception as exc:  # pragma: no cover - message is the point
            pytest.fail(f"{location} raised {type(exc).__name__}: {exc}")
