"""Cross-process determinism: results survive hash randomisation.

The algorithms iterate Python sets in several places, and set order
depends on PYTHONHASHSEED for str labels. The benchmark claims
("benches are deterministic") require that the *outputs* — components
and accuracy numbers — do not. This test runs an enumeration in fresh
subprocesses under different hash seeds and compares the JSON results.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

_SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")

_SNIPPET = """
import json
from repro.core import ripple, vcce_td, vcce_bu
from repro.datasets import DATASETS

dataset = DATASETS["sc-shipsec"]
graph = dataset.graph()
k = dataset.default_k
out = {}
for label, algo in (("ripple", ripple), ("td", vcce_td), ("bu", vcce_bu)):
    result = algo(graph, k)
    out[label] = sorted(sorted(map(str, c)) for c in result.components)
print(json.dumps(out))
"""


def _run(hash_seed: str) -> dict:
    # Minimal environment so only the hash seed varies between runs —
    # but PYTHONPATH must survive, or the subprocess cannot import
    # repro when the package is run from a source checkout.
    pythonpath = os.pathsep.join(
        p for p in (_SRC, os.environ.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": hash_seed,
            "PATH": "/usr/bin:/bin",
            "PYTHONPATH": pythonpath,
        },
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.slow
def test_results_stable_across_hash_seeds():
    first = _run("0")
    second = _run("12345")
    assert first == second
