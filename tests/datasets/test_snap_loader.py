"""The streaming SNAP loader: format tolerance, hygiene counters, CLI."""

import gzip

import pytest

from repro import obs
from repro.datasets import (
    load_snap_edge_list,
    load_snap_graph,
    stream_snap_edges,
)
from repro.errors import GraphFormatError
from repro.graph import Graph

SNAP_TEXT = """\
# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 4 Edges: 5
% network-repository style comment
# FromNodeId\tToNodeId
0\t1
1 2
2 0

1\t0
3 3
2 3 0.75
"""


def _write(tmp_path, text, name="graph.txt"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestStreamSnapEdges:
    def test_comments_blanks_and_extra_columns(self):
        pairs = list(stream_snap_edges(SNAP_TEXT.splitlines()))
        assert pairs == [(0, 1), (1, 2), (2, 0), (1, 0), (3, 3), (2, 3)]

    def test_non_integer_labels_stay_strings(self):
        pairs = list(stream_snap_edges(["a b", "b 3"]))
        assert pairs == [("a", "b"), ("b", 3)]

    def test_single_token_line_rejected_with_lineno(self):
        with pytest.raises(GraphFormatError) as excinfo:
            list(stream_snap_edges(["0 1", "lonely"], source="x.txt"))
        assert excinfo.value.lineno == 2
        assert "x.txt" in str(excinfo.value)


class TestLoadSnapEdgeList:
    def test_loads_with_hygiene_counters(self, tmp_path):
        path = _write(tmp_path, SNAP_TEXT)
        with obs.collecting() as collector:
            csr = load_snap_edge_list(path)
        # 4 distinct undirected edges; the 1-0 duplicate and the 3-3
        # self-loop are dropped but counted.
        assert csr.num_edges == 4
        assert collector.counter("graph.csr.stream_duplicates_dropped") == 1
        assert collector.counter("graph.csr.stream_selfloops_dropped") == 1
        assert csr.to_graph() == Graph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3)]
        )

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(SNAP_TEXT)
        assert load_snap_edge_list(str(path)).num_edges == 4

    def test_graph_form_primes_csr_cache(self, tmp_path):
        path = _write(tmp_path, SNAP_TEXT)
        graph = load_snap_graph(path)
        assert graph.num_edges == 4
        assert graph.csr_if_current() is not None


class TestFixtureScript:
    def test_small_fixture_enumerates_planted_cliques(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        out = tmp_path / "fixture.txt"
        subprocess.run(
            [
                sys.executable,
                str(root / "scripts" / "make_snap_fixture.py"),
                "-o",
                str(out),
                "--cliques",
                "4",
                "--clique-size",
                "6",
                "--fringe",
                "300",
            ],
            check=True,
            capture_output=True,
        )
        graph = load_snap_graph(str(out))
        from repro.core.ripple import ripple

        result = ripple(graph, 3)
        sizes = sorted(len(c) for c in result.components)
        assert sizes == [6, 6, 6, 6]


class TestCli:
    def test_enumerate_format_snap(self, tmp_path, capsys):
        from repro.cli import main

        path = _write(tmp_path, SNAP_TEXT)
        assert main(["enumerate", path, "--format", "snap", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "2-VCC" in out

    def test_default_format_unchanged(self, tmp_path, capsys):
        from repro.cli import main

        path = _write(tmp_path, "0 1\n1 2\n2 0\n")
        assert main(["enumerate", path, "-k", "2"]) == 0
        assert "2-VCC" in capsys.readouterr().out
