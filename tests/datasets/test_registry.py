"""Tests for the benchmark dataset registry."""

import pytest

from repro.datasets import DATASETS, dataset_names, get_dataset
from repro.errors import ParameterError
from repro.graph import k_core


class TestRegistry:
    def test_ten_datasets_mirroring_the_paper(self):
        assert len(DATASETS) == 10
        mirrors = {d.mirrors for d in DATASETS.values()}
        assert "uk-2005" in mirrors
        assert "socfb-konect" in mirrors

    def test_lookup(self):
        assert get_dataset("ca-dblp").name == "ca-dblp"

    def test_unknown_lookup_raises(self):
        with pytest.raises(ParameterError) as excinfo:
            get_dataset("nope")
        assert "ca-dblp" in str(excinfo.value)

    def test_names_order(self):
        assert dataset_names()[0] == "ca-condmat"

    def test_builds_are_deterministic(self):
        for dataset in DATASETS.values():
            assert dataset.graph() == dataset.graph()

    def test_every_dataset_has_content_at_every_k(self):
        # Each (dataset, k) row of Table III must have a non-empty
        # k-core, otherwise the accuracy row is vacuous.
        for dataset in DATASETS.values():
            graph = dataset.graph()
            assert dataset.default_k in dataset.ks
            for k in dataset.ks:
                core = k_core(graph, k)
                assert core.num_vertices > k, (dataset.name, k)

    def test_sizes_stay_bench_friendly(self):
        for dataset in DATASETS.values():
            graph = dataset.graph()
            assert 50 <= graph.num_vertices <= 2000, dataset.name
            assert graph.num_edges <= 20000, dataset.name
