"""Tests for the parallel RIPPLE executor."""

import pytest

from repro.core import ripple, vcce_td
from repro.errors import ParameterError
from repro.graph import Graph, community_graph, nbm_trap_graph, planted_kvcc_graph
from repro.parallel import ParallelConfig, parallel_ripple


class TestConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.workers == 2
        assert config.backend == "process"

    def test_validation(self):
        with pytest.raises(ParameterError):
            ParallelConfig(workers=0)
        with pytest.raises(ParameterError):
            ParallelConfig(backend="gpu")


class TestThreadBackend:
    """Thread backend: no pickling, exercises the decomposition logic."""

    def test_matches_sequential_components(self):
        g = planted_kvcc_graph(
            2, 24, 3, seed=3, periphery_pairs=1, bridge_width=2
        )
        sequential = set(ripple(g, 3).components)
        config = ParallelConfig(workers=3, backend="thread")
        parallel = set(parallel_ripple(g, 3, config).components)
        assert parallel == sequential

    def test_matches_exact_on_planted(self):
        g = community_graph([20, 22], k=3, seed=5, bridge_width=2)
        config = ParallelConfig(workers=2, backend="thread")
        result = parallel_ripple(g, 3, config)
        assert set(result.components) == set(vcce_td(g, 3).components)

    def test_refuses_nbm_trap(self):
        g = nbm_trap_graph(4, seed=1)
        config = ParallelConfig(workers=2, backend="thread")
        assert parallel_ripple(g, 4, config).num_components == 2

    def test_empty_graph(self):
        config = ParallelConfig(workers=2, backend="thread")
        assert parallel_ripple(Graph(), 3, config).components == []

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            parallel_ripple(Graph(), 1, ParallelConfig(backend="thread"))

    def test_algorithm_name_mentions_backend(self):
        g = community_graph([16], k=3, seed=1)
        config = ParallelConfig(workers=4, backend="thread")
        result = parallel_ripple(g, 3, config)
        assert "thread" in result.algorithm
        assert "4" in result.algorithm


class TestProcessBackend:
    """Process backend: real parallelism; kept small for test speed."""

    def test_matches_sequential_components(self):
        g = community_graph([18, 18], k=3, seed=9, bridge_width=2)
        sequential = set(ripple(g, 3).components)
        config = ParallelConfig(workers=2, backend="process")
        parallel = set(parallel_ripple(g, 3, config).components)
        assert parallel == sequential
