"""Unit tests for the parallel executor's internal building blocks."""

from repro.core import PhaseTimer
from repro.graph import Graph, clique_graph, community_graph
from repro.parallel.executor import (
    _chunks,
    _init_worker,
    _merge_pair_task,
    _expand_task,
    _parallel_merge,
    _touches,
)


class TestChunks:
    def test_round_robin_partition(self):
        chunks = _chunks(list(range(10)), 3)
        assert sorted(x for chunk in chunks for x in chunk) == list(range(10))
        assert len(chunks) == 3

    def test_more_pieces_than_items(self):
        chunks = _chunks([1, 2], 5)
        assert chunks == [(1,), (2,)]

    def test_empty(self):
        assert _chunks([], 4) == []


class TestTouches:
    def test_overlap(self):
        g = clique_graph(4)
        assert _touches(g, {0, 1}, {1, 2})

    def test_edge_between(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert _touches(g, {0}, {1})
        assert not _touches(g, {0}, {2})


class TestWorkerTasks:
    """Thread-mode task functions run directly against module globals."""

    def test_expand_task(self):
        g = community_graph([14], k=3, seed=1)
        _init_worker(g, 3)
        grown, stats = _expand_task(frozenset(range(6)))
        assert grown == frozenset(range(14))
        assert stats["counters"]["expansion.rme.rounds"] >= 1

    def test_merge_pair_task(self):
        g = clique_graph(6)
        _init_worker(g, 3)
        verdict, stats = _merge_pair_task(
            (frozenset(range(4)), frozenset(range(2, 6)), 0, 1)
        )
        assert verdict
        assert stats["counters"]["merge.tests_attempted"] == 1


class TestUnionFindMerge:
    def test_chain_merges_collapse_transitively(self):
        # Three overlapping cliques: pairwise merges chain into one.
        g = Graph()
        for offset in (0, 3, 6):
            for u, v in clique_graph(6, offset=offset).edges():
                g.add_edge(u, v)
        _init_worker(g, 3)

        class _Inline:
            """Minimal SupervisedPool stub: runs tasks inline."""

            def run(self, stage, fn, payloads, validate=None):
                return [fn(payload) for payload in payloads]

        merged = _parallel_merge(
            _Inline(), g, 3,
            [set(range(6)), set(range(3, 9)), set(range(6, 12))],
            PhaseTimer(),
        )
        assert merged == [set(range(12))]
