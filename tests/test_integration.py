"""Cross-module integration tests: all algorithms against each other.

The library's deepest invariants, exercised end-to-end on randomized
graphs:

* VCCE-TD output is exactly the set of maximal k-VCSs (sound, maximal,
  pairwise non-nested);
* every heuristic's output is sound (k-connected) except VCCE-BU's
  documented NBM defect;
* every heuristic component is contained in some exact component
  (heuristics can under-cover, never invent cross-community structure);
* RIPPLE coverage ⊇ VCCE-BU coverage up to trap structures;
* F_same/J_Index of the exact result against itself is 100%.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ripple, ripple_me, vcce_bu, vcce_td
from repro.core.verify import verify_result
from repro.flow import is_k_vertex_connected
from repro.graph import (
    k_core,
    mixed_community_graph,
    planted_kvcc_graph,
    powerlaw_cluster_graph,
    random_gnm,
)
from repro.graph.generators import CommunitySpec
from repro.metrics import accuracy_report


def random_test_graph(seed: int):
    """A deterministic family mixing the structural ingredients."""
    kind = seed % 3
    if kind == 0:
        return planted_kvcc_graph(
            2, 18, 3, seed=seed, periphery_pairs=1, bridge_width=2,
            noise_vertices=4,
        )
    if kind == 1:
        return random_gnm(26, 95, seed=seed)
    return powerlaw_cluster_graph(40, attach=3, triangle_prob=0.6, seed=seed)


class TestExactOracleInvariants:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=12, deadline=None)
    def test_td_components_are_valid_maximal_kvccs(self, seed):
        graph = random_test_graph(seed)
        result = vcce_td(graph, 3)
        reports = verify_result(graph, result)
        assert all(r.is_valid_kvcc for r in reports), [
            r.describe() for r in reports
        ]

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=12, deadline=None)
    def test_td_components_pairwise_nonnested(self, seed):
        graph = random_test_graph(seed)
        comps = vcce_td(graph, 3).components
        for a in comps:
            for b in comps:
                if a is not b:
                    assert not a <= b

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=8, deadline=None)
    def test_td_covers_every_kvcs_vertex(self, seed):
        # Any vertex of the k-core that lies in SOME k-VCS must be
        # covered; conversely covered vertices lie in the k-core.
        graph = random_test_graph(seed)
        k = 3
        result = vcce_td(graph, k)
        covered = result.covered_vertices()
        core = k_core(graph, k).vertex_set()
        assert covered <= core


class TestHeuristicsAgainstOracle:
    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_ripple_components_inside_exact_components(self, seed):
        graph = random_test_graph(seed)
        k = 3
        exact = vcce_td(graph, k).components
        for comp in ripple(graph, k).components:
            assert any(
                comp <= exact_comp for exact_comp in exact
            ), f"component {sorted(comp, key=repr)} crosses exact boundaries"

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_ripple_output_sound(self, seed):
        graph = random_test_graph(seed)
        for comp in ripple(graph, 3).components:
            assert is_k_vertex_connected(graph.subgraph(comp), 3)

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=6, deadline=None)
    def test_ripple_me_dominates_ripple(self, seed):
        graph = random_test_graph(seed)
        exact = vcce_td(graph, 3)
        rp = accuracy_report(
            ripple(graph, 3).components, exact.components
        )
        me = accuracy_report(
            ripple_me(graph, 3, hops=1).components, exact.components
        )
        assert me["F_same"] >= rp["F_same"] - 1e-9

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=8, deadline=None)
    def test_self_accuracy_is_perfect(self, seed):
        graph = random_test_graph(seed)
        exact = vcce_td(graph, 3)
        report = accuracy_report(exact.components, exact.components)
        assert report == {"F_same": 100.0, "J_Index": 100.0}


class TestMixedBuildGraphs:
    def test_all_algorithms_on_mixed_specs(self):
        specs = [
            CommunitySpec(size=20, k=3, periphery_pairs=1),
            CommunitySpec(size=24, k=4, mixed_chains=1),
            CommunitySpec(size=22, k=3, periphery_pairs=1, mixed_chains=1),
        ]
        graph = mixed_community_graph(specs, seed=31, bridge_width=2)
        for k in (3, 4):
            exact = vcce_td(graph, k)
            for algorithm in (ripple, vcce_bu):
                result = algorithm(graph, k)
                report = accuracy_report(
                    result.components, exact.components
                )
                assert 0.0 <= report["F_same"] <= 100.0
            rp = accuracy_report(
                ripple(graph, k).components, exact.components
            )
            bu = accuracy_report(
                vcce_bu(graph, k).components, exact.components
            )
            assert rp["F_same"] >= bu["F_same"] - 1e-9

    def test_exact_at_multiple_k_is_monotone(self):
        # Every (k+1)-VCC is contained in some k-VCC.
        graph = planted_kvcc_graph(2, 20, 4, seed=17, bridge_width=2)
        lower = vcce_td(graph, 3).components
        higher = vcce_td(graph, 4).components
        for comp in higher:
            assert any(comp <= low for low in lower)
