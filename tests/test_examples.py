"""Every example script runs clean and prints its key claims.

Examples are documentation that executes; without these tests they rot
silently when the API moves. Each runs in a fresh subprocess (as a user
would run it) and is checked for its load-bearing output lines.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

# script name -> substrings that must appear in its stdout
EXPECTATIONS = {
    "quickstart.py": ["RIPPLE matches the exact result: True"],
    "social_communities.py": ["RIPPLE", "F_same=100.0%"],
    "robust_infrastructure.py": [
        "verified against all 2-failure combinations: True",
        "vertex-disjoint routes",
    ],
    "expansion_anatomy.py": ["UE 0/24, RME 24/24"],
    "connectivity_hierarchy.py": ["k=4: 1 component(s)"],
    "custom_pipeline.py": ["best configuration"],
    "dataset_explorer.py": [],  # spot run, see below
    "cohesion_ladder.py": ["4-VCC:   2 component(s)"],
    "parallel_enumeration.py": ["components agree: True"],
}


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    [name for name in sorted(EXPECTATIONS) if name != "dataset_explorer.py"],
)
def test_example_runs(script):
    stdout = _run(script)
    for marker in EXPECTATIONS[script]:
        assert marker in stdout, f"{script} missing {marker!r}:\n{stdout}"


@pytest.mark.slow
def test_dataset_explorer_single_dataset():
    stdout = _run("dataset_explorer.py", "uk-2005")
    assert "uk-2005" in stdout
    assert "F_same 100.0%" in stdout
