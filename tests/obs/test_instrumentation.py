"""End-to-end instrumentation: counters flow out of the pipelines."""

import pytest

from repro import obs, parallel_ripple, ripple
from repro.core.expansion import multiple_expansion
from repro.graph import community_graph, planted_kvcc_graph
from repro.parallel import ParallelConfig


@pytest.fixture
def host():
    return community_graph([16, 16], k=3, seed=2, bridge_width=2)


class TestSequentialPipeline:
    def test_ripple_populates_core_counters(self, host):
        with obs.collecting() as collector:
            result = ripple(host, 3)
        assert result.num_components == 2
        counters = collector.counters
        # On planted communities every merge test resolves through the
        # overlap/boundary short-circuits, so no Dinic flow ever runs
        # (ME flow counters are covered by the RIPPLE-ME test below).
        assert counters["merge.bound_short_circuits"] > 0
        assert counters.get("flow.dinic.calls", 0) == 0
        assert counters["expansion.rme.rounds"] > 0
        assert counters["merge.tests_attempted"] > 0
        assert (
            counters["merge.tests_attempted"]
            == counters.get("merge.tests_accepted", 0)
            + counters.get("merge.tests_rejected", 0)
        )
        assert counters["seeding.seeds"] > 0

    def test_phase_timers_mirrored(self, host):
        with obs.collecting() as collector:
            ripple(host, 3)
        phases = collector.phases
        for name in ("phase.kcore", "phase.seeding", "phase.merging"):
            assert name in phases

    def test_me_round_counters(self, host):
        with obs.collecting() as collector:
            grown = multiple_expansion(host, 3, set(range(6)), hops=1)
        assert len(grown) >= 6
        assert collector.counter("expansion.me.rounds") > 0
        assert collector.counter("expansion.me.absorbed") > 0
        assert collector.counter("flow.dinic.calls") > 0
        assert collector.counter("flow.dinic.augmentations") > 0

    def test_runs_are_isolated(self, host):
        with obs.collecting() as first:
            ripple(host, 3)
        with obs.collecting() as second:
            ripple(host, 3)
        # Same deterministic work, recorded independently.
        assert first.counters == second.counters


class TestWorkerAggregation:
    def test_thread_pool_counters_aggregate(self, host):
        config = ParallelConfig(workers=2, backend="thread")
        with obs.collecting() as collector:
            result = parallel_ripple(host, 3, config)
        assert result.num_components == 2
        counters = collector.counters
        assert counters["parallel.tasks_completed"] > 0
        assert collector.workers_merged == counters["parallel.tasks_completed"]
        # Worker-side activity (merge tests run inside tasks) made it back.
        assert counters["merge.tests_attempted"] > 0
        assert counters["expansion.rme.rounds"] > 0

    def test_process_pool_counters_aggregate(self):
        g = planted_kvcc_graph(2, 14, 3, seed=4)
        config = ParallelConfig(workers=2, backend="process")
        with obs.collecting() as collector:
            result = parallel_ripple(g, 3, config)
        assert result.num_components >= 1
        counters = collector.counters
        assert counters["parallel.tasks_completed"] > 0
        assert counters["merge.tests_attempted"] > 0
        assert counters["expansion.rme.rounds"] > 0

    def test_without_collector_nothing_leaks(self, host):
        config = ParallelConfig(workers=2, backend="thread")
        parallel_ripple(host, 3, config)
        assert obs.NULL.is_empty()
