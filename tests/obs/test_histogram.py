"""Histogram semantics: layout, merges, round trips, quantile error."""

import json
import math
import random

import pytest

from repro import obs
from repro.errors import ParseError
from repro.obs import Collector, NullCollector
from repro.obs.histogram import (
    BOUNDS,
    LAYOUT,
    RATIO,
    Histogram,
    subtract_snapshots,
)


def _filled(values) -> Histogram:
    histogram = Histogram()
    for value in values:
        histogram.record(value)
    return histogram


class TestLayout:
    def test_bounds_are_deterministic_pure_arithmetic(self):
        # The contract the mergeability story rests on: every process
        # derives byte-identical edges from constants.
        assert BOUNDS == tuple(1e-6 * 2.0 ** (i / 4) for i in range(97))
        assert LAYOUT == "log2x4/1e-6/97"

    def test_bounds_are_strictly_ascending_at_fixed_ratio(self):
        for lower, upper in zip(BOUNDS, BOUNDS[1:]):
            assert upper / lower == pytest.approx(RATIO)

    def test_bucketing_is_upper_inclusive(self):
        histogram = _filled([BOUNDS[10]])
        assert histogram.counts[10] == 1
        histogram = _filled([BOUNDS[10] * 1.000001])
        assert histogram.counts[11] == 1

    def test_zero_negative_and_nan_clamp_to_the_first_bucket(self):
        histogram = _filled([0.0, -1.0, float("nan")])
        assert histogram.counts[0] == 3
        assert histogram.sum == 0.0

    def test_overflow_lands_in_the_last_bucket(self):
        histogram = _filled([BOUNDS[-1] * 2])
        assert histogram.counts[-1] == 1
        # Overflow quantiles report the top finite bound, not infinity.
        assert histogram.quantile(1.0) == BOUNDS[-1]


class TestMerge:
    def test_merge_is_commutative(self):
        a_then_b = _filled([0.001, 0.5])
        a_then_b.merge(_filled([0.002, 30.0]))
        b_then_a = _filled([0.002, 30.0])
        b_then_a.merge(_filled([0.001, 0.5]))
        assert a_then_b.to_snapshot() == b_then_a.to_snapshot()

    def test_merge_is_associative(self):
        parts = [
            [0.0001, 0.001],
            [0.01, 0.02, 0.02],
            [1.5],
        ]
        left = _filled(parts[0])
        left.merge(_filled(parts[1]))
        left.merge(_filled(parts[2]))
        inner = _filled(parts[1])
        inner.merge(_filled(parts[2]))
        right = _filled(parts[0])
        right.merge(inner)
        # Bucket counts are integers, so grouping is exactly
        # associative; the float sum is associative only to rounding.
        assert left.counts == right.counts
        assert left.count == right.count == 6
        assert left.sum == pytest.approx(right.sum)

    def test_merge_accepts_snapshot_dicts(self):
        histogram = _filled([0.003])
        histogram.merge(_filled([0.004]).to_snapshot())
        assert histogram.count == 2

    def test_merge_rejects_foreign_layouts(self):
        snapshot = _filled([0.003]).to_snapshot()
        snapshot["layout"] = "log10/1e-3/42"
        with pytest.raises(ParseError, match="layout"):
            Histogram().merge(snapshot)


class TestSnapshotRoundTrip:
    def test_snapshot_is_sparse_and_json_safe(self):
        snapshot = _filled([0.003, 0.003, 7.0]).to_snapshot()
        assert set(snapshot) == {"layout", "count", "sum", "buckets"}
        assert len(snapshot["buckets"]) == 2  # only touched buckets
        assert all(isinstance(k, str) for k in snapshot["buckets"])
        # Survives a JSON round trip unchanged.
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_round_trip_is_byte_identical(self):
        histogram = _filled([1e-6, 0.004, 0.004, 2.5, 40.0])
        first = json.dumps(histogram.to_snapshot(), sort_keys=True)
        second = json.dumps(
            Histogram.from_snapshot(json.loads(first)).to_snapshot(),
            sort_keys=True,
        )
        assert first == second

    def test_obs_schema_round_trip_is_byte_identical(self):
        collector = Collector()
        collector.count("serving.requests", 3)
        for value in (0.001, 0.002, 0.4):
            collector.observe("serving.handle_seconds.point", value)
        document = collector.to_json()
        assert json.loads(document)["schema"] == "repro.obs/1"
        assert Collector.from_json(document).to_json() == document

    def test_from_snapshot_rejects_corruption(self):
        good = _filled([0.003]).to_snapshot()
        for mutation in (
            {"layout": "other"},
            {"count": 99},  # disagrees with bucket total
            {"buckets": {"9999": 1}},  # out of range
            {"buckets": {"3": -1}},  # negative count
            {"sum": -1.0},
        ):
            with pytest.raises(ParseError):
                Histogram.from_snapshot({**good, **mutation})

    def test_subtract_snapshots_gives_the_window(self):
        before = _filled([0.001, 0.010])
        after = _filled([0.001, 0.010, 0.020, 0.020])
        window = subtract_snapshots(
            after.to_snapshot(), before.to_snapshot()
        )
        assert window.count == 2
        assert window.sum == pytest.approx(0.040)

    def test_subtract_clamps_on_restart(self):
        # A daemon restart makes "after" smaller than "before"; the
        # delta degrades to the after-window instead of going negative.
        window = subtract_snapshots(
            _filled([0.001]).to_snapshot(),
            _filled([0.001, 0.002, 0.003]).to_snapshot(),
        )
        assert window.count == 0
        assert window.sum == 0.0


class TestQuantiles:
    def test_quantile_within_one_bucket_width_of_exact(self):
        rng = random.Random(7)
        values = [rng.uniform(1e-5, 2.0) for _ in range(5000)]
        histogram = _filled(values)
        values.sort()
        for q in (0.50, 0.90, 0.95, 0.99):
            exact = values[math.ceil(q * len(values)) - 1]
            estimate = histogram.quantile(q)
            # The estimate is the holding bucket's upper edge: never
            # below the true order statistic, at most RATIO above it.
            assert exact <= estimate <= exact * RATIO

    def test_quantile_validates_q(self):
        histogram = _filled([0.001])
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="quantile"):
                histogram.quantile(bad)

    def test_empty_histogram_reports_nan(self):
        assert math.isnan(Histogram().quantile(0.5))
        assert Histogram().is_empty()
        assert Histogram().summary() == {"count": 0}

    def test_summary_reports_milliseconds(self):
        summary = _filled([0.002] * 100).summary()
        assert summary["count"] == 100
        assert summary["mean_ms"] == pytest.approx(2.0)
        assert 2.0 <= summary["p95_ms"] <= 2.0 * RATIO


class TestCollectorDispatch:
    def test_collector_observe_creates_and_records(self):
        collector = Collector()
        collector.observe("serving.handle_seconds.point", 0.004)
        collector.observe("serving.handle_seconds.point", 0.005)
        histogram = collector.histogram("serving.handle_seconds.point")
        assert histogram is not None and histogram.count == 2
        assert not collector.is_empty()

    def test_merge_folds_histograms_across_collectors(self):
        worker = Collector()
        worker.observe("serving.handle_seconds.point", 0.004)
        parent = Collector()
        parent.observe("serving.handle_seconds.point", 0.006)
        parent.merge(worker.snapshot())
        merged = parent.histogram("serving.handle_seconds.point")
        assert merged.count == 2

    def test_reset_histograms_keeps_lifetime_counters(self):
        collector = Collector()
        collector.count("serving.requests", 5)
        collector.observe("serving.handle_seconds.point", 0.004)
        collector.reset_histograms()
        assert collector.histograms == {}
        assert collector.counter("serving.requests") == 5

    def test_null_collector_observe_is_a_noop(self):
        null = NullCollector()
        null.observe("serving.handle_seconds.point", 0.004)
        assert null.histograms == {}
        assert null.is_empty()

    def test_module_level_observe_routes_to_the_scoped_collector(self):
        # Without a scope, obs.observe dispatches to the NULL default.
        obs.observe("orphan.histogram", 1.0)
        collector = Collector()
        with obs.collecting(collector):
            obs.observe("scoped.histogram", 0.002)
        assert collector.histogram("scoped.histogram").count == 1
        assert obs.get_collector().is_noop
