"""Tests for the repro.obs Collector / NullCollector substrate."""

import json

import pytest

from repro import obs
from repro.errors import ParseError
from repro.obs import SCHEMA, Collector, NullCollector


class TestCollector:
    def test_count_and_read(self):
        collector = Collector()
        collector.count("a")
        collector.count("a", 4)
        assert collector.counter("a") == 5
        assert collector.counter("missing") == 0
        assert collector.counters == {"a": 5}

    def test_span_accumulates_seconds(self):
        collector = Collector()
        with collector.span("work"):
            pass
        with collector.span("work"):
            pass
        assert collector.seconds("work") >= 0
        assert set(collector.phases) == {"work"}

    def test_merge_sums_counters_and_phases(self):
        left = Collector()
        left.count("x", 2)
        left.add_seconds("p", 1.0)
        right = Collector()
        right.count("x", 3)
        right.count("y")
        right.add_seconds("p", 0.5)
        left.merge(right)
        assert left.counter("x") == 5
        assert left.counter("y") == 1
        assert left.seconds("p") == pytest.approx(1.5)
        assert left.workers_merged == 1

    def test_merge_accepts_snapshot_dict(self):
        collector = Collector()
        collector.merge({"counters": {"x": 7}, "phases": {"p": 0.25}})
        assert collector.counter("x") == 7
        assert collector.seconds("p") == pytest.approx(0.25)

    def test_take_returns_delta_and_resets(self):
        collector = Collector()
        collector.count("x")
        delta = collector.take()
        assert delta["counters"] == {"x": 1}
        assert collector.is_empty()

    def test_reset(self):
        collector = Collector()
        collector.count("x")
        collector.add_seconds("p", 1.0)
        collector.merge(Collector())
        assert not collector.is_empty()
        collector.reset()
        assert collector.is_empty()


class TestJsonRoundTrip:
    def test_round_trip(self):
        collector = Collector()
        collector.count("flow.dinic.calls", 12)
        collector.add_seconds("phase.seeding", 0.125)
        collector.merge(
            {
                "counters": {
                    "merge.tests_attempted": 3,
                    "merge.tests_accepted": 1,
                    "merge.tests_rejected": 2,
                }
            }
        )
        rebuilt = Collector.from_json(collector.to_json())
        assert rebuilt.counters == collector.counters
        assert rebuilt.phases == collector.phases
        assert rebuilt.workers_merged == collector.workers_merged

    def test_schema_field_present(self):
        payload = json.loads(Collector().to_json())
        assert payload["schema"] == SCHEMA
        assert set(payload) == {
            "schema",
            "counters",
            "phases",
            "workers_merged",
        }

    def test_rejects_wrong_schema(self):
        with pytest.raises(ParseError):
            Collector.from_json(
                json.dumps(
                    {"schema": "nope/9", "counters": {}, "phases": {}}
                )
            )

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            Collector.from_json("not json at all")


class TestNullCollector:
    def test_records_nothing(self):
        null = NullCollector()
        null.count("a", 100)
        null.add_seconds("p", 5.0)
        with null.span("work"):
            pass
        null.merge({"counters": {"x": 1}, "phases": {"p": 1.0}})
        assert null.is_empty()
        assert null.counters == {}
        assert null.phases == {}

    def test_is_noop_flag(self):
        assert NullCollector().is_noop
        assert not Collector().is_noop


class TestActiveCollector:
    def test_default_is_shared_noop(self):
        assert obs.get_collector() is obs.NULL

    def test_collecting_scopes_and_restores(self):
        with obs.collecting() as collector:
            assert obs.get_collector() is collector
            obs.count("x")
        assert obs.get_collector() is obs.NULL
        assert collector.counter("x") == 1

    def test_nested_scopes(self):
        with obs.collecting() as outer:
            obs.count("outer")
            with obs.collecting() as inner:
                obs.count("inner")
            obs.count("outer")
        assert outer.counters == {"outer": 2}
        assert inner.counters == {"inner": 1}

    def test_module_level_helpers_hit_active(self):
        with obs.collecting() as collector:
            obs.add_seconds("p", 0.5)
            with obs.span("q"):
                pass
        assert collector.seconds("p") == pytest.approx(0.5)
        assert "q" in collector.phases

    def test_noop_outside_scope_stays_silent(self):
        # Instrumented library code running with no active collector
        # must leave the shared NULL untouched.
        obs.count("x", 3)
        obs.add_seconds("p", 1.0)
        assert obs.NULL.is_empty()
