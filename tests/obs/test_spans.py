"""Tests for repro.obs.spans: recorder, adoption, exporters, caps."""

import json
import tracemalloc

import pytest

from repro import obs
from repro.core.ripple import ripple
from repro.errors import ParseError
from repro.graph import community_graph
from repro.obs import Collector, NullCollector
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    SpanRecorder,
    aggregate_tree,
    render_span_tree,
    span_totals,
    to_chrome_trace,
)


def _spanned_collector() -> Collector:
    collector = Collector()
    collector.enable_spans()
    return collector


class TestRecorder:
    def test_nested_spans_build_a_tree(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("outer", k=4):
                with obs.start_span("inner", seed=7):
                    pass
                with obs.start_span("inner", seed=8):
                    pass
        roots = collector.spans.roots
        assert [r.name for r in roots] == ["outer"]
        assert roots[0].attrs == {"k": 4}
        assert [c.name for c in roots[0].children] == ["inner", "inner"]
        assert roots[0].children[1].attrs == {"seed": 8}
        assert roots[0].wall >= max(c.wall for c in roots[0].children)

    def test_set_span_attrs_updates_innermost(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("outer"):
                with obs.start_span("inner"):
                    obs.set_span_attrs(ring=13)
        (outer,) = collector.spans.roots
        assert outer.attrs == {}
        assert outer.children[0].attrs == {"ring": 13}

    def test_agg_span_folds_without_tree_nodes(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("work"):
                for _ in range(3):
                    with obs.agg_span("flow.call"):
                        pass
        (work,) = collector.spans.roots
        assert work.children == []
        count, wall, cpu = work.agg["flow.call"]
        assert count == 3
        assert wall >= 0 and cpu >= 0

    def test_agg_span_outside_any_span_is_dropped(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.agg_span("orphan"):
                pass
        assert collector.spans.is_empty()

    def test_span_event_records_marker(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("stage"):
                obs.span_event("resilience.retry", index=3)
        (stage,) = collector.spans.roots
        (marker,) = stage.children
        assert marker.name == "resilience.retry"
        assert marker.attrs == {"index": 3}
        assert marker.wall == 0.0

    def test_cap_drops_and_counts(self):
        collector = Collector()
        collector.enable_spans(max_spans=2)
        with obs.collecting(collector):
            with obs.start_span("a"):
                pass
            with obs.start_span("b"):
                pass
            with obs.start_span("c"):
                pass
            obs.span_event("d")
        recorder = collector.spans
        assert [r.name for r in recorder.roots] == ["a", "b"]
        assert recorder.dropped == 2

    def test_disabled_collector_returns_null_span(self):
        collector = Collector()
        assert collector.start_span("x") is NULL_SPAN
        assert collector.agg_span("x") is NULL_SPAN
        collector.span_event("x")
        collector.set_span_attrs(k=1)
        assert collector.spans is None
        assert collector.is_empty()

    def test_null_collector_never_accumulates(self):
        null = NullCollector()
        recorder = null.enable_spans()
        assert null.start_span("x") is NULL_SPAN
        null.span_event("x")
        # the handed-back recorder is a throwaway, not shared state
        assert recorder.is_empty()
        assert null.is_empty()

    def test_reset_clears_tree(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("a"):
                pass
        collector.reset()
        assert collector.spans.is_empty()


class TestMemoryProfiling:
    def test_mem_peak_under_tracemalloc(self):
        collector = _spanned_collector()
        already = tracemalloc.is_tracing()
        if not already:
            tracemalloc.start()
        try:
            with obs.collecting(collector):
                with obs.start_span("outer"):
                    with obs.start_span("alloc"):
                        blob = [0] * 50_000
                    del blob
        finally:
            if not already:
                tracemalloc.stop()
        (outer,) = collector.spans.roots
        (alloc,) = outer.children
        # the list is ~400KiB; both windows must see it
        assert alloc.mem_peak is not None and alloc.mem_peak > 100_000
        assert outer.mem_peak is not None
        assert outer.mem_peak >= alloc.mem_peak

    def test_mem_peak_absent_without_tracemalloc(self):
        assert not tracemalloc.is_tracing()
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("a"):
                pass
        assert collector.spans.roots[0].mem_peak is None


class TestSerialisation:
    def _sample_tree(self) -> Collector:
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("outer", k=3):
                with obs.agg_span("leaf.call"):
                    pass
                with obs.start_span("inner", seed=1):
                    pass
        return collector

    def test_span_dict_round_trip(self):
        (outer,) = self._sample_tree().spans.roots
        rebuilt = Span.from_dict(
            json.loads(json.dumps(outer.to_dict()))
        )
        assert rebuilt.name == "outer"
        assert rebuilt.attrs == {"k": 3}
        assert rebuilt.wall == pytest.approx(outer.wall, abs=1e-9)
        assert rebuilt.agg["leaf.call"][0] == 1
        assert [c.name for c in rebuilt.children] == ["inner"]

    def test_recorder_snapshot_load_round_trip(self):
        recorder = self._sample_tree().spans
        clone = SpanRecorder()
        clone.load(json.loads(json.dumps(recorder.snapshot())))
        assert [r.name for r in clone.roots] == ["outer"]
        assert clone.dropped == recorder.dropped
        assert not clone.is_empty()

    def test_collector_json_round_trip_keeps_spans(self):
        collector = self._sample_tree()
        collector.count("x", 2)
        rebuilt = Collector.from_json(collector.to_json())
        assert rebuilt.spans is not None
        assert [r.name for r in rebuilt.spans.roots] == ["outer"]
        assert rebuilt.counter("x") == 2

    def test_spans_key_absent_when_empty(self):
        collector = Collector()
        collector.enable_spans()
        payload = json.loads(collector.to_json())
        assert "spans" not in payload
        assert "spans" not in collector.snapshot()


class TestAdoption:
    def _worker_payload(self) -> dict:
        worker = Collector()
        worker.enable_spans()
        with obs.collecting(worker):
            with obs.start_span("task.expand", size=9):
                pass
        return worker.snapshot()

    def test_merge_adopts_and_reparents(self):
        payload = self._worker_payload()
        orchestrator = _spanned_collector()
        with obs.collecting(orchestrator):
            with obs.start_span("parallel.stage", stage="expansion"):
                orchestrator.merge(payload)
        (stage,) = orchestrator.spans.roots
        (task,) = stage.children
        assert task.name == "task.expand"
        assert task.attrs["origin"] == "worker"
        assert task.attrs["size"] == 9
        assert orchestrator.workers_merged == 1

    def test_adopt_lands_at_root_without_open_span(self):
        orchestrator = _spanned_collector()
        orchestrator.merge(self._worker_payload())
        (task,) = orchestrator.spans.roots
        assert task.attrs["origin"] == "worker"

    def test_adopt_accumulates_dropped(self):
        payload = self._worker_payload()
        payload["spans"]["dropped"] = 5
        orchestrator = _spanned_collector()
        orchestrator.merge(payload)
        assert orchestrator.spans.dropped == 5

    def test_merge_without_spans_enables_recorder(self):
        orchestrator = Collector()
        orchestrator.merge(self._worker_payload())
        assert orchestrator.spans is not None
        assert not orchestrator.spans.is_empty()


class TestReductions:
    def _tree(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("phase"):
                for seed in range(3):
                    with obs.start_span("expand.seed", seed=seed):
                        with obs.agg_span("flow.call"):
                            pass
        return collector.spans.roots

    def test_span_totals_counts_and_agg_buckets(self):
        totals = span_totals(self._tree())
        assert totals["expand.seed"]["count"] == 3
        assert totals["flow.call"]["count"] == 3
        assert totals["phase"]["count"] == 1
        assert totals["phase"]["wall"] >= totals["expand.seed"]["wall"] / 2

    def test_aggregate_tree_collapses_siblings(self):
        (phase,) = aggregate_tree(self._tree())
        assert phase.name == "phase"
        (expand,) = phase.children.values()
        assert expand.count == 3
        assert expand.agg["flow.call"][0] == 3

    def test_render_span_tree(self):
        text = render_span_tree(self._tree(), dropped=2)
        assert "phase" in text
        assert "expand.seed" in text and "x3" in text
        assert "- flow.call" in text and "(aggregated)" in text
        assert "2 span(s) dropped" in text

    def test_render_hides_long_tails(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("top"):
                for i in range(5):
                    with obs.start_span(f"child.{i}"):
                        pass
        text = render_span_tree(
            collector.spans.roots, max_children=2
        )
        assert "… 3 more name(s)" in text


class TestChromeTrace:
    def test_complete_events_are_wellformed(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("outer", k=4):
                with obs.start_span("inner"):
                    pass
        doc = to_chrome_trace(collector.spans.roots)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in slices] == ["outer", "inner"]
        for event in slices:
            assert isinstance(event["ts"], int)
            assert event["dur"] >= 1
            assert event["tid"] == 0
        outer = slices[0]
        assert outer["args"]["k"] == 4
        assert "cpu_s" in outer["args"]

    def test_zero_duration_markers_become_instants(self):
        collector = _spanned_collector()
        with obs.collecting(collector):
            with obs.start_span("stage"):
                obs.span_event("resilience.retry", index=1)
        doc = to_chrome_trace(collector.spans.roots)
        (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "resilience.retry"

    def test_worker_subtrees_get_own_lanes(self):
        worker = Collector()
        worker.enable_spans()
        with obs.collecting(worker):
            with obs.start_span("task.expand"):
                pass
        orchestrator = _spanned_collector()
        with obs.collecting(orchestrator):
            with obs.start_span("parallel.stage"):
                orchestrator.merge(worker.snapshot())
        doc = to_chrome_trace(orchestrator.spans.roots)
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"
        }
        assert by_name["parallel.stage"]["tid"] == 0
        assert by_name["task.expand"]["tid"] == 1
        lanes = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert lanes and lanes[0]["args"]["name"] == "worker-lane-1"

    def test_dropped_spans_reported_in_metadata(self):
        doc = to_chrome_trace([], dropped=7)
        assert doc["metadata"] == {"dropped_spans": 7}


class TestValidate:
    def test_accepts_consistent_counters(self):
        collector = Collector()
        collector.count("merge.tests_attempted", 5)
        collector.count("merge.tests_accepted", 2)
        collector.count("merge.tests_rejected", 3)
        collector.validate()

    def test_rejects_merge_imbalance(self):
        collector = Collector()
        collector.count("merge.tests_attempted", 5)
        collector.count("merge.tests_accepted", 2)
        with pytest.raises(ParseError):
            collector.validate()

    def test_rejects_negative_counter(self):
        collector = Collector()
        collector.count("x", -1)
        with pytest.raises(ParseError):
            collector.validate()

    def test_from_json_rejects_corrupted_document(self):
        document = json.dumps(
            {
                "schema": "repro.obs/1",
                "counters": {
                    "merge.tests_attempted": 9,
                    "merge.tests_accepted": 1,
                    "merge.tests_rejected": 2,
                },
                "phases": {},
                "workers_merged": 0,
            }
        )
        with pytest.raises(ParseError, match="merge.tests_attempted"):
            Collector.from_json(document)

    def test_from_json_rejects_negative_phase(self):
        document = json.dumps(
            {
                "schema": "repro.obs/1",
                "counters": {},
                "phases": {"phase.seeding": -0.5},
                "workers_merged": 0,
            }
        )
        with pytest.raises(ParseError):
            Collector.from_json(document)


class TestPipelineReconciliation:
    """Acceptance: the span tree and the flat phase totals agree."""

    def test_phase_spans_match_flat_timers(self):
        graph = community_graph([16, 16], k=3, seed=2)
        collector = Collector()
        collector.enable_spans()
        with obs.collecting(collector):
            ripple(graph, 3)
        totals = span_totals(collector.spans.roots)
        assert collector.phases, "flat phase timers missing"
        for name, flat_seconds in collector.phases.items():
            assert name in totals, f"no span recorded for {name}"
            span_seconds = totals[name]["wall"]
            # Identical enter/exit points: only the fixed ~µs span
            # overhead can separate them. Allow 5% relative, with an
            # absolute floor for the sub-100µs phases (finalize).
            assert span_seconds == pytest.approx(
                flat_seconds, rel=0.05, abs=200e-6
            ), name

    def test_spans_off_leaves_collector_unchanged(self):
        graph = community_graph([16, 16], k=3, seed=2)
        with obs.collecting() as collector:
            ripple(graph, 3)
        assert collector.spans is None
        payload = json.loads(collector.to_json())
        assert "spans" not in payload
