"""Tests for the REPRO_TRACE structured-event log."""

import io
import json

import pytest

from repro import ripple
from repro.graph import community_graph
from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    trace.close()


def _read_events(text):
    events = [json.loads(line) for line in text.splitlines() if line]
    for event in events:
        assert {"seq", "ts", "event"} <= set(event)
    return events


class TestConfiguration:
    def test_disabled_by_default_env(self):
        assert trace.configure_from_env({}) is False
        assert not trace.is_enabled()

    @pytest.mark.parametrize("flag", ["1", "true", "YES", "On"])
    def test_truthy_flags(self, flag, tmp_path):
        target = tmp_path / "t.jsonl"
        enabled = trace.configure_from_env(
            {"REPRO_TRACE": flag, "REPRO_TRACE_FILE": str(target)}
        )
        assert enabled and trace.is_enabled()

    def test_falsy_flag_disables(self):
        trace.configure(stream=io.StringIO())
        assert trace.configure_from_env({"REPRO_TRACE": "0"}) is False
        assert not trace.is_enabled()

    def test_emit_without_sink_is_noop(self):
        trace.configure()
        trace.emit("anything", n=1)  # must not raise


class _FlushCountingSink(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


class TestFlushing:
    def test_events_buffer_until_interval(self):
        sink = _FlushCountingSink()
        trace.configure(stream=sink)
        for i in range(trace.FLUSH_INTERVAL - 1):
            trace.emit("tick", n=i)
        assert sink.flushes == 0
        trace.emit("tick", n=trace.FLUSH_INTERVAL - 1)
        assert sink.flushes == 1
        trace.emit("tick", n=0)  # a fresh window buffers again
        assert sink.flushes == 1

    def test_resilience_events_flush_immediately(self):
        sink = _FlushCountingSink()
        trace.configure(stream=sink)
        trace.emit("rme.round", members=3)
        assert sink.flushes == 0
        trace.emit("resilience.retry", index=0)
        assert sink.flushes == 1

    def test_close_flushes_buffered_tail(self, tmp_path):
        target = tmp_path / "t.jsonl"
        trace.configure(path=str(target))
        trace.emit("tick", n=1)  # below the interval: still buffered
        trace.close()
        events = _read_events(target.read_text(encoding="utf-8"))
        assert [e["event"] for e in events] == ["tick"]

    def test_close_survives_already_closed_sink(self):
        sink = io.StringIO()
        trace.configure(stream=sink)
        trace.emit("tick", n=1)
        sink.close()
        trace.close()  # must not raise
        assert not trace.is_enabled()

class TestEmission:
    def test_events_are_wellformed_jsonl(self):
        sink = io.StringIO()
        trace.configure(stream=sink)
        trace.emit("alpha", n=1)
        trace.emit("beta", n=2, label="x")
        events = _read_events(sink.getvalue())
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert [e["seq"] for e in events] == [1, 2]
        assert events[1]["label"] == "x"

    def test_pipeline_traces_fixed_point_loops(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        trace.configure_from_env(
            {"REPRO_TRACE": "1", "REPRO_TRACE_FILE": str(target)}
        )
        graph = community_graph([12, 12], k=3, seed=1, bridge_width=2)
        ripple(graph, 3)
        trace.close()
        events = _read_events(target.read_text(encoding="utf-8"))
        kinds = {e["event"] for e in events}
        assert "rme.round" in kinds
        assert "merge.round" in kinds
        assert "seeding.qkvcs" in kinds
        # seq is strictly increasing — the log orders the loops.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        rme = [e for e in events if e["event"] == "rme.round"]
        assert all(
            isinstance(e["members"], int) and isinstance(e["absorbed"], int)
            for e in rme
        )
