"""Tests for the supervised worker pool: unit paths and end-to-end recovery.

The unit tests drive :class:`SupervisedPool` directly on a thread pool
(no pickling constraints on the task functions); the end-to-end tests
inject faults into ``parallel_ripple`` and assert the recovered run
produces exactly the unfaulted components. Process-only paths (pool
rebuilds after a crash, reclaiming a hung worker) have dedicated
process-backend tests regardless of the ``backend`` fixture.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.errors import ParameterError
from repro.parallel import ParallelConfig, parallel_ripple
from repro.resilience import FaultPlan, SupervisedPool, SupervisionConfig
from repro.resilience.faults import GARBAGE


def _double(payload):
    return payload * 2


def _make_spool(plan=None, **kwargs) -> SupervisedPool:
    supervision = SupervisionConfig(
        fault_plan=plan if plan is not None else FaultPlan([]), **kwargs
    )
    return SupervisedPool(
        make_pool=lambda: ThreadPoolExecutor(max_workers=2),
        install_local=lambda: None,
        backend="thread",
        supervision=supervision,
    )


class TestConfig:
    def test_defaults(self):
        config = SupervisionConfig()
        assert config.task_timeout is None
        assert config.max_retries == 2
        assert config.degrade_after == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout": 0},
            {"task_timeout": -1},
            {"max_retries": -1},
            {"degrade_after": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            SupervisionConfig(**kwargs)


class TestSupervisedPool:
    def test_results_in_submission_order(self):
        with _make_spool() as spool:
            assert spool.run("stage", _double, list(range(16))) == [
                2 * i for i in range(16)
            ]

    def test_raise_fault_is_retried(self):
        with obs.collecting() as collector:
            with _make_spool(FaultPlan.parse("stage:2:raise")) as spool:
                results = spool.run("stage", _double, [0, 1, 2, 3])
        assert results == [0, 2, 4, 6]
        assert collector.counter("resilience.faults_injected") == 1
        assert collector.counter("resilience.task_failures") == 1
        assert collector.counter("resilience.retries") == 1

    def test_crash_downgrades_to_raise_on_threads(self):
        """A thread cannot hard-kill the process without killing the
        suite; the supervisor must survive the downgraded fault."""
        with obs.collecting() as collector:
            with _make_spool(FaultPlan.parse("stage:0:crash")) as spool:
                results = spool.run("stage", _double, [5, 6])
        assert results == [10, 12]
        assert collector.counter("resilience.faults_injected") == 1

    def test_garbage_caught_by_validator(self):
        with obs.collecting() as collector:
            with _make_spool(FaultPlan.parse("stage:1:garbage")) as spool:
                results = spool.run(
                    "stage",
                    _double,
                    [1, 2, 3],
                    validate=lambda value: value != GARBAGE,
                )
        assert results == [2, 4, 6]
        assert collector.counter("resilience.invalid_results") == 1
        assert collector.counter("resilience.retries") == 1

    def test_hang_trips_task_timeout(self):
        plan = FaultPlan.parse("stage:0:hang")
        plan.hang_seconds = 5.0
        with obs.collecting() as collector:
            with _make_spool(plan, task_timeout=0.1) as spool:
                results = spool.run("stage", _double, [7, 8])
        assert results == [14, 16]
        assert collector.counter("resilience.task_timeouts") == 1

    def test_exhausted_retries_fall_back_to_local_execution(self):
        plan = FaultPlan.parse("stage:0:raise:*")
        with obs.collecting() as collector:
            with _make_spool(plan, max_retries=1) as spool:
                results = spool.run("stage", _double, [9])
        assert results == [18]
        assert collector.counter("resilience.local_fallback_tasks") == 1
        assert collector.counter("resilience.task_failures") == 2

    def test_degrades_after_consecutive_failures(self):
        plan = FaultPlan.parse("stage:*:raise:*")
        with obs.collecting() as collector:
            with _make_spool(plan, degrade_after=2) as spool:
                results = spool.run("stage", _double, list(range(8)))
                assert spool.degraded
        assert results == [2 * i for i in range(8)]
        assert collector.counter("resilience.degraded") == 1

    def test_stage_indices_persist_across_runs(self):
        """The fault index space covers the whole run, not one wave:
        stage:3 hits the fourth dispatch even when it arrives in a
        second run() call."""
        with obs.collecting() as collector:
            with _make_spool(FaultPlan.parse("stage:3:raise")) as spool:
                first = spool.run("stage", _double, [0, 1])
                second = spool.run("stage", _double, [2, 3])
        assert (first, second) == ([0, 2], [4, 6])
        assert collector.counter("resilience.faults_injected") == 1

    def test_success_resets_consecutive_failures(self):
        """Spread-out failures never add up to degradation."""
        plan = FaultPlan.parse("stage:0:raise,stage:2:raise,stage:4:raise")
        with _make_spool(plan, degrade_after=2) as spool:
            results = spool.run("stage", _double, list(range(6)))
            assert not spool.degraded
        assert results == [2 * i for i in range(6)]

    def test_close_is_idempotent(self):
        spool = _make_spool()
        spool.run("stage", _double, [1])
        spool.close()
        spool.close()


class TestParallelRippleRecovery:
    """Injected faults must never change what parallel_ripple returns."""

    @pytest.mark.parametrize(
        "stage",
        ["seeding.cliques", "seeding.lkvcs", "merging", "expansion"],
    )
    def test_crash_in_each_stage_recovers(
        self, fault_graph, expected_components, backend, monkeypatch, stage
    ):
        monkeypatch.setenv("REPRO_FAULT", f"{stage}:*:crash")
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            result = parallel_ripple(fault_graph, 3, config)
        assert result.status == "completed"
        assert set(result.components) == expected_components
        assert collector.counter("resilience.faults_injected") == 1
        assert collector.counter("resilience.retries") >= 1

    def test_garbage_result_recovers(
        self, fault_graph, expected_components, backend, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT", "expansion:0:garbage")
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            result = parallel_ripple(fault_graph, 3, config)
        assert set(result.components) == expected_components
        assert collector.counter("resilience.invalid_results") == 1

    def test_process_crash_rebuilds_pool(
        self, fault_graph, expected_components
    ):
        supervision = SupervisionConfig(
            fault_plan=FaultPlan.parse("merging:0:crash")
        )
        config = ParallelConfig(workers=2, backend="process")
        with obs.collecting() as collector:
            result = parallel_ripple(
                fault_graph, 3, config, supervision=supervision
            )
        assert result.status == "completed"
        assert set(result.components) == expected_components
        assert collector.counter("resilience.pool_rebuilds") >= 1

    def test_process_hung_worker_is_reclaimed(
        self, fault_graph, expected_components
    ):
        plan = FaultPlan.parse("expansion:0:hang", hang_seconds=8.0)
        supervision = SupervisionConfig(task_timeout=0.5, fault_plan=plan)
        config = ParallelConfig(workers=2, backend="process")
        with obs.collecting() as collector:
            result = parallel_ripple(
                fault_graph, 3, config, supervision=supervision
            )
        assert result.status == "completed"
        assert set(result.components) == expected_components
        assert collector.counter("resilience.task_timeouts") >= 1
        assert collector.counter("resilience.pool_rebuilds") >= 1

    def test_persistent_failures_degrade_but_complete(
        self, fault_graph, expected_components, backend
    ):
        plan = FaultPlan.parse("expansion:*:raise:*")
        supervision = SupervisionConfig(
            max_retries=1, degrade_after=3, fault_plan=plan
        )
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            result = parallel_ripple(
                fault_graph, 3, config, supervision=supervision
            )
        assert result.status == "degraded"
        assert not result.is_partial
        assert set(result.components) == expected_components
        assert collector.counter("resilience.degraded") == 1

    def test_unfaulted_run_counts_nothing(self, fault_graph, backend):
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            result = parallel_ripple(fault_graph, 3, config)
        assert result.status == "completed"
        assert not any(
            name.startswith("resilience.") for name in collector.counters
        )


class TestWorkerAggregation:
    """``workers_merged == parallel.tasks_completed`` must survive every
    recovery path: a task's snapshot is folded into the orchestrator's
    collector exactly once, whether its final result came from the pool,
    from an in-process local fallback after exhausted retries, or from
    degraded sequential execution."""

    def test_holds_on_local_fallback(
        self, fault_graph, expected_components, backend
    ):
        # One task fails every dispatch, exhausts its retries, and runs
        # locally; degrade_after is high so the pool never degrades.
        plan = FaultPlan.parse("expansion:0:raise:*")
        supervision = SupervisionConfig(
            max_retries=1, degrade_after=50, fault_plan=plan
        )
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            result = parallel_ripple(
                fault_graph, 3, config, supervision=supervision
            )
        assert result.status == "completed"
        assert set(result.components) == expected_components
        assert collector.counter("resilience.local_fallback_tasks") >= 1
        assert collector.workers_merged == collector.counter(
            "parallel.tasks_completed"
        )

    def test_holds_under_degradation(
        self, fault_graph, expected_components, backend
    ):
        plan = FaultPlan.parse("expansion:*:raise:*")
        supervision = SupervisionConfig(
            max_retries=1, degrade_after=3, fault_plan=plan
        )
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            result = parallel_ripple(
                fault_graph, 3, config, supervision=supervision
            )
        assert result.status == "degraded"
        assert set(result.components) == expected_components
        assert collector.workers_merged == collector.counter(
            "parallel.tasks_completed"
        )

    def test_holds_on_clean_runs(self, fault_graph, backend):
        config = ParallelConfig(workers=2, backend=backend)
        with obs.collecting() as collector:
            parallel_ripple(fault_graph, 3, config)
        assert collector.workers_merged == collector.counter(
            "parallel.tasks_completed"
        )
