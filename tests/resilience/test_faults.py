"""Tests for the deterministic fault-injection plan (repro.resilience.faults)."""

import pytest

from repro.resilience.faults import (
    ENV_FAULT,
    ENV_HANG_SECONDS,
    UNLIMITED,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
)


class TestParsing:
    def test_single_spec(self):
        plan = FaultPlan.parse("expansion:0:crash")
        assert plan.specs == [
            FaultSpec(stage="expansion", index=0, mode="crash", times=1)
        ]

    def test_times_field(self):
        plan = FaultPlan.parse("merging:2:raise:3")
        assert plan.specs[0].times == 3

    def test_wildcard_index_and_times(self):
        plan = FaultPlan.parse("seeding.cliques:*:garbage:*")
        spec = plan.specs[0]
        assert spec.index is None
        assert spec.times == UNLIMITED

    def test_comma_separated_and_whitespace(self):
        plan = FaultPlan.parse(" expansion:0:crash , merging:*:hang ,")
        assert [s.stage for s in plan.specs] == ["expansion", "merging"]

    def test_describe_round_trips(self):
        text = "expansion:*:crash:*"
        assert FaultPlan.parse(text).specs[0].describe() == text

    @pytest.mark.parametrize(
        "bad",
        [
            "expansion",  # too few fields
            "expansion:0",  # too few fields
            "expansion:0:crash:1:extra",  # too many fields
            ":0:crash",  # empty stage
            "expansion:0:explode",  # unknown mode
            "expansion:x:crash",  # non-integer index
            "expansion:-1:crash",  # negative index
            "expansion:0:crash:x",  # non-integer times
            "expansion:0:crash:0",  # times < 1
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)


class TestFromEnv:
    def test_unset_means_no_plan(self):
        assert FaultPlan.from_env(environ={}) is None

    def test_blank_means_no_plan(self):
        assert FaultPlan.from_env(environ={ENV_FAULT: "  "}) is None

    def test_reads_spec_and_hang_seconds(self):
        plan = FaultPlan.from_env(
            environ={ENV_FAULT: "expansion:0:hang", ENV_HANG_SECONDS: "2.5"}
        )
        assert plan.specs[0].mode == "hang"
        assert plan.hang_seconds == 2.5

    def test_default_hang_seconds(self):
        plan = FaultPlan.from_env(environ={ENV_FAULT: "expansion:0:hang"})
        assert plan.hang_seconds == 30.0

    def test_bad_hang_seconds_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_env(
                environ={ENV_FAULT: "a:0:crash", ENV_HANG_SECONDS: "soon"}
            )


class TestDraw:
    def test_one_shot_fires_once(self):
        plan = FaultPlan.parse("merging:1:crash")
        assert plan.draw("merging", 0) is None
        assert plan.draw("merging", 1) == "crash"
        assert plan.draw("merging", 1) is None
        assert plan.outstanding() == []

    def test_stage_must_match(self):
        plan = FaultPlan.parse("merging:0:crash")
        assert plan.draw("expansion", 0) is None
        assert plan.draw("merging", 0) == "crash"

    def test_wildcard_stage_matches_everything(self):
        plan = FaultPlan.parse("*:*:raise:2")
        assert plan.draw("merging", 3) == "raise"
        assert plan.draw("expansion", 7) == "raise"
        assert plan.draw("merging", 8) is None

    def test_times_budget(self):
        plan = FaultPlan.parse("expansion:*:garbage:2")
        assert plan.draw("expansion", 0) == "garbage"
        assert plan.draw("expansion", 1) == "garbage"
        assert plan.draw("expansion", 2) is None

    def test_unlimited_never_exhausts(self):
        plan = FaultPlan.parse("expansion:*:raise:*")
        for index in range(20):
            assert plan.draw("expansion", index) == "raise"
        assert plan.outstanding() == plan.specs

    def test_declaration_order(self):
        plan = FaultPlan.parse("expansion:0:crash,expansion:*:hang")
        assert plan.draw("expansion", 0) == "crash"
        assert plan.draw("expansion", 0) == "hang"

    def test_is_empty(self):
        assert FaultPlan([]).is_empty()
        assert not FaultPlan.parse("a:0:crash").is_empty()
