"""CLI hardening tests: deadlines, fault env, interrupts, exit codes."""

import json

import pytest

from repro.cli import (
    EXIT_DEADLINE,
    EXIT_ERROR,
    EXIT_INTERRUPT,
    main,
)
from repro.graph import community_graph, write_edge_list


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(community_graph([10, 10], k=3, seed=0), path)
    return str(path)


class TestDeadlineFlag:
    def test_zero_deadline_exits_3_with_partial_stats(
        self, edge_list, tmp_path, capsys
    ):
        stats = tmp_path / "stats.json"
        code = main(
            [
                "--stats-json", str(stats),
                "enumerate", edge_list, "-k", "3", "--deadline", "0",
            ]
        )
        assert code == EXIT_DEADLINE
        out = capsys.readouterr().out
        assert "[deadline]" in out
        assert "partial results (deadline)" in out
        payload = json.loads(stats.read_text())
        assert payload["status"] == "deadline"
        assert payload["counters"]["resilience.deadline_stops"] == 1

    def test_zero_deadline_parallel(self, edge_list):
        code = main(
            [
                "enumerate", edge_list, "-k", "3",
                "--algorithm", "parallel-ripple", "--backend", "thread",
                "--deadline", "0",
            ]
        )
        assert code == EXIT_DEADLINE

    def test_generous_deadline_completes(self, edge_list, capsys):
        code = main(
            ["enumerate", edge_list, "-k", "3", "--deadline", "3600"]
        )
        assert code == 0
        assert "partial results" not in capsys.readouterr().out

    def test_partial_result_json_is_resumable(
        self, edge_list, tmp_path, capsys
    ):
        saved = tmp_path / "partial.json"
        code = main(
            [
                "enumerate", edge_list, "-k", "3",
                "--deadline", "0", "--json", str(saved),
            ]
        )
        assert code == EXIT_DEADLINE
        from repro.core.result import VCCResult

        restored = VCCResult.from_json(saved.read_text())
        assert restored.status == "deadline"
        assert restored.checkpoint == []

    def test_deadline_ignored_by_exact_algorithm(self, edge_list, capsys):
        code = main(
            [
                "enumerate", edge_list, "-k", "3",
                "--algorithm", "vcce-td", "--deadline", "0",
            ]
        )
        assert code == 0
        assert "ignoring" in capsys.readouterr().err


class TestFaultEnv:
    def test_injected_crash_recovers_to_clean_exit(
        self, edge_list, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_FAULT", "expansion:0:crash")
        stats = tmp_path / "stats.json"
        code = main(
            [
                "--stats-json", str(stats),
                "enumerate", edge_list, "-k", "3",
                "--algorithm", "parallel-ripple", "--backend", "thread",
                "--quiet",
            ]
        )
        assert code == 0
        payload = json.loads(stats.read_text())
        assert payload["status"] == "completed"
        assert payload["counters"]["resilience.faults_injected"] == 1
        assert payload["counters"]["resilience.retries"] == 1

    def test_bad_fault_spec_is_a_usage_error(
        self, edge_list, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_FAULT", "not-a-spec")
        code = main(
            [
                "enumerate", edge_list, "-k", "3",
                "--algorithm", "parallel-ripple", "--backend", "thread",
            ]
        )
        assert code == EXIT_ERROR
        assert "bad fault spec" in capsys.readouterr().err


class TestTaskTimeoutFlag:
    def test_parses_as_float(self, edge_list):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["enumerate", "g.txt", "-k", "3",
             "--deadline", "1.5", "--task-timeout", "0.25"]
        )
        assert args.deadline == 1.5
        assert args.task_timeout == 0.25

    def test_noted_and_ignored_for_sequential_runs(self, edge_list, capsys):
        code = main(
            ["enumerate", edge_list, "-k", "3", "--task-timeout", "5"]
        )
        assert code == 0
        assert "ignoring" in capsys.readouterr().err


class TestInterrupt:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        def boom(args, runinfo):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli._dispatch", boom)
        assert main(["datasets"]) == EXIT_INTERRUPT
        assert "interrupted" in capsys.readouterr().err
