"""Tests for run-wide deadlines, partial results, and resumption."""

import pytest

from repro import obs
from repro.core import ripple, vcce_bu
from repro.core.result import VCCResult
from repro.errors import ParameterError
from repro.graph import planted_kvcc_graph
from repro.parallel import ParallelConfig, parallel_ripple
from repro.resilience import Deadline, as_deadline


class StepClock:
    """A clock advancing one second per reading: deadlines expire after
    an exact number of boundary checks instead of racing real time."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestDeadline:
    def test_zero_budget_is_expired(self):
        assert Deadline(0).expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ParameterError):
            Deadline(-1)

    def test_unlimited(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.limit is None
        assert deadline.remaining() is None

    def test_fake_clock_expiry(self):
        deadline = Deadline(2.5, clock=StepClock())
        assert not deadline.expired()  # elapsed 1
        assert not deadline.expired()  # elapsed 2
        assert deadline.expired()  # elapsed 3

    def test_elapsed_and_remaining(self):
        deadline = Deadline(10, clock=StepClock())
        assert deadline.elapsed() == 1.0
        assert deadline.remaining() == 8.0  # second reading

    def test_remaining_clamped_at_zero(self):
        deadline = Deadline(0.5, clock=StepClock())
        assert deadline.remaining() == 0.0

    def test_clamp_combines_budget_and_timeout(self):
        assert Deadline.unlimited().clamp(5.0) == 5.0
        assert Deadline.unlimited().clamp(None) is None
        deadline = Deadline(10, clock=StepClock())
        assert deadline.clamp(None) == 9.0  # first reading after start
        assert deadline.clamp(3.0) == 3.0

    def test_as_deadline_passthrough(self):
        deadline = Deadline(5)
        assert as_deadline(deadline) is deadline

    def test_as_deadline_coercions(self):
        assert as_deadline(None).limit is None
        assert as_deadline(2).limit == 2.0
        assert as_deadline(0.25).limit == 0.25

    def test_as_deadline_rejects_bool_and_str(self):
        with pytest.raises(ParameterError):
            as_deadline(True)
        with pytest.raises(ParameterError):
            as_deadline("10")


class TestPipelineDeadline:
    """Deadlines thread through the sequential and parallel pipelines."""

    def test_zero_deadline_stops_before_any_work(self, fault_graph):
        with obs.collecting() as collector:
            result = ripple(fault_graph, 3, deadline=0)
        assert result.status == "deadline"
        assert result.is_partial
        assert result.components == []
        assert result.checkpoint == []
        assert collector.counter("resilience.deadline_stops") == 1

    def test_vcce_bu_honors_deadline(self, fault_graph):
        assert vcce_bu(fault_graph, 3, deadline=0).status == "deadline"

    def test_parallel_zero_deadline(self, fault_graph, backend):
        config = ParallelConfig(workers=2, backend=backend)
        result = parallel_ripple(fault_graph, 3, config, deadline=0)
        assert result.status == "deadline"
        assert result.components == []

    @pytest.mark.parametrize("checks", [2.5, 3.5, 4.5])
    def test_partial_components_are_monotone(
        self, fault_graph, expected_components, checks
    ):
        """Every partial component is contained in a full-run component:
        stopping early loses completeness, never correctness."""
        deadline = Deadline(checks, clock=StepClock())
        partial = ripple(fault_graph, 3, deadline=deadline)
        assert partial.status == "deadline"
        for comp in partial.components:
            assert any(comp <= full for full in expected_components)

    def test_resume_from_checkpoint_completes_the_run(
        self, fault_graph, expected_components
    ):
        deadline = Deadline(3.5, clock=StepClock())  # expire mid-round
        partial = ripple(fault_graph, 3, deadline=deadline)
        assert partial.status == "deadline"
        assert partial.checkpoint
        resumed = ripple(fault_graph, 3, resume_from=partial.checkpoint)
        assert resumed.status == "completed"
        assert set(resumed.components) == expected_components

    def test_resume_from_empty_checkpoint_restarts(
        self, fault_graph, expected_components
    ):
        """A run stopped before seeding checkpoints nothing; resuming
        from that must seed from scratch, not return an empty result."""
        partial = ripple(fault_graph, 3, deadline=0)
        assert partial.checkpoint == []
        resumed = ripple(fault_graph, 3, resume_from=partial.checkpoint)
        assert set(resumed.components) == expected_components
        config = ParallelConfig(workers=2, backend="thread")
        resumed = parallel_ripple(fault_graph, 3, config, resume_from=[])
        assert set(resumed.components) == expected_components

    def test_checkpoint_survives_json(self, fault_graph):
        deadline = Deadline(2.5, clock=StepClock())
        partial = ripple(fault_graph, 3, deadline=deadline)
        restored = VCCResult.from_json(partial.to_json())
        assert restored.status == "deadline"
        assert restored.checkpoint == partial.checkpoint
        resumed = ripple(fault_graph, 3, resume_from=restored.checkpoint)
        assert set(resumed.components) == set(
            ripple(fault_graph, 3).components
        )

    def test_shared_budget_across_calls(self):
        """as_deadline passes an existing Deadline through, so one
        budget can govern a whole sweep of enumerations."""
        graph = planted_kvcc_graph(1, 12, 3, seed=0)
        deadline = Deadline(0)
        first = ripple(graph, 3, deadline=deadline)
        second = vcce_bu(graph, 3, deadline=deadline)
        assert first.status == second.status == "deadline"


class TestResultStatus:
    def test_unknown_status_rejected(self):
        with pytest.raises(ParameterError):
            VCCResult([], k=3, algorithm="x", status="exploded")

    def test_completed_runs_have_no_checkpoint(self, fault_graph):
        result = ripple(fault_graph, 3)
        assert result.status == "completed"
        assert not result.is_partial
        assert result.checkpoint is None
        assert "[" not in result.summary()

    def test_summary_flags_partial_runs(self):
        result = VCCResult([], k=3, algorithm="x", status="deadline")
        assert "[deadline]" in result.summary()

    def test_json_round_trip_defaults_to_completed(self):
        result = VCCResult([frozenset({1, 2, 3, 4})], k=3, algorithm="x")
        restored = VCCResult.from_json(result.to_json())
        assert restored.status == "completed"
        assert restored.checkpoint is None
