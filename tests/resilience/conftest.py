"""Fixtures for the resilience suite.

The end-to-end recovery tests run against a pool backend chosen by the
``REPRO_RESILIENCE_BACKEND`` environment variable (the CI fault-injection
job sets it to run the whole suite under both ``thread`` and ``process``);
the local default is ``thread`` to keep the tier-1 run fast. Paths that
only exist on the process backend (pool rebuilds, hung-worker reclaim)
have dedicated always-process tests.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ripple
from repro.graph import planted_kvcc_graph


@pytest.fixture
def backend() -> str:
    return os.environ.get("REPRO_RESILIENCE_BACKEND", "thread")


@pytest.fixture(scope="session")
def fault_graph():
    """A planted 2×3-VCC graph that dispatches work in every parallel
    stage (clique roots, LkVCS fallback, merge pair tests, expansion)."""
    return planted_kvcc_graph(
        2, 24, 3, seed=3, periphery_pairs=1, bridge_width=2
    )


@pytest.fixture(scope="session")
def expected_components(fault_graph):
    """The unfaulted ground truth every recovered run must reproduce."""
    return set(ripple(fault_graph, 3).components)
