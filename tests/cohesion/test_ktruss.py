"""Tests for k-truss decomposition against the networkx oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohesion import k_truss, truss_numbers
from repro.errors import ParameterError
from repro.graph import Graph, clique_graph, random_gnm
from tests.conftest import to_networkx


class TestKTruss:
    def test_clique_is_its_own_truss(self):
        g = clique_graph(6)
        assert k_truss(g, 6).vertex_set() == g.vertex_set()
        assert k_truss(g, 7).num_vertices == 0

    def test_triangle_free_graph_empty_at_3(self):
        g = Graph.from_edges((i, (i + 1) % 8) for i in range(8))
        assert k_truss(g, 3).num_vertices == 0

    def test_pendant_edges_peeled(self):
        g = clique_graph(5)
        g.add_edge(0, "pendant")
        truss = k_truss(g, 4)
        assert "pendant" not in truss
        assert truss.vertex_set() == set(range(5))

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            k_truss(Graph(), 1)

    @given(st.integers(min_value=0, max_value=800))
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(18, 60, seed=seed)
        for k in (3, 4, 5):
            ours = k_truss(g, k)
            theirs = nx.k_truss(to_networkx(g), k)
            assert ours.vertex_set() == set(theirs.nodes()), (seed, k)
            assert ours.num_edges == theirs.number_of_edges(), (seed, k)


class TestTrussNumbers:
    def test_clique(self):
        numbers = truss_numbers(clique_graph(5))
        assert set(numbers.values()) == {5}

    def test_consistent_with_k_truss(self):
        for seed in range(5):
            g = random_gnm(14, 40, seed=seed)
            numbers = truss_numbers(g)
            for k in (3, 4):
                truss = k_truss(g, k)
                kept = {frozenset(e) for e in truss.edges()}
                by_number = {e for e, t in numbers.items() if t >= k}
                assert kept == by_number, (seed, k)
