"""Tests for edge connectivity and k-ECC enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cohesion import (
    find_edge_cut,
    global_edge_connectivity,
    k_edge_components,
    local_edge_connectivity,
)
from repro.errors import ParameterError
from repro.graph import (
    Graph,
    circulant_graph,
    clique_graph,
    community_graph,
    component_of,
    random_gnm,
)
from tests.conftest import to_networkx


class TestLocalEdgeConnectivity:
    def test_known_values(self):
        g = clique_graph(5)
        assert local_edge_connectivity(g, 0, 4) == 4
        path = Graph.from_edges([(0, 1), (1, 2)])
        assert local_edge_connectivity(path, 0, 2) == 1

    def test_validation(self):
        g = clique_graph(3)
        with pytest.raises(ParameterError):
            local_edge_connectivity(g, 1, 1)
        with pytest.raises(ParameterError):
            local_edge_connectivity(g, 0, 99)

    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(12, 28, seed=seed)
        nxg = to_networkx(g)
        vertices = sorted(g.vertices())
        for u, v in [(vertices[0], w) for w in vertices[1:5]]:
            ours = local_edge_connectivity(g, u, v)
            theirs = nx.edge_connectivity(nxg, u, v)
            assert ours == theirs


class TestGlobalEdgeConnectivity:
    def test_known_values(self):
        assert global_edge_connectivity(clique_graph(6)) == 5
        assert global_edge_connectivity(circulant_graph(10, 2)) == 4
        two = Graph.from_edges([(0, 1), (2, 3)])
        assert global_edge_connectivity(two) == 0

    def test_tiny_raises(self):
        with pytest.raises(ParameterError):
            global_edge_connectivity(Graph())

    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx(self, seed):
        g = random_gnm(12, 26, seed=seed)
        assert global_edge_connectivity(g) == nx.edge_connectivity(
            to_networkx(g)
        )


class TestFindEdgeCut:
    def test_none_on_well_connected(self):
        assert find_edge_cut(clique_graph(6), 5) is None

    def test_cut_disconnects(self):
        g = community_graph([10, 10], k=3, seed=2, bridge_width=2)
        cut = find_edge_cut(g, 3)
        assert cut is not None and len(cut) < 3
        work = g.copy()
        for edge in cut:
            u, v = tuple(edge)
            work.remove_edge(u, v)
        anchor = next(iter(work.vertices()))
        assert component_of(work, anchor) != work.vertex_set()

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            find_edge_cut(Graph(), 0)


class TestKEdgeComponents:
    def test_planted_communities(self):
        g = community_graph([12, 14], k=3, seed=4, bridge_width=2)
        comps = k_edge_components(g, 3)
        assert sorted(map(len, comps), reverse=True) == [14, 12]

    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=15, deadline=None)
    def test_matches_networkx(self, seed):
        # Oracle: nx.k_edge_subgraphs — the maximal k-edge-connected
        # *induced subgraph* notion of the paper's references [6][40]
        # (nx.k_edge_components is the weaker pairwise-in-G notion).
        g = random_gnm(16, 36, seed=seed)
        for k in (2, 3):
            ours = {frozenset(c) for c in k_edge_components(g, k)}
            theirs = {
                frozenset(c)
                for c in nx.k_edge_subgraphs(to_networkx(g), k)
                if len(c) > 1
            }
            assert ours == theirs, (seed, k)

    def test_kvcc_inside_kecc(self):
        # vertex connectivity implies edge connectivity: every k-VCC
        # is contained in some k-ECC
        from repro.core import vcce_td

        g = community_graph([12, 12], k=3, seed=9, bridge_width=2)
        eccs = k_edge_components(g, 3)
        for vcc in vcce_td(g, 3).components:
            assert any(vcc <= ecc for ecc in eccs)
