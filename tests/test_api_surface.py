"""API-surface contract tests: exports stay consistent and importable."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.bench",
    "repro.cohesion",
    "repro.core",
    "repro.datasets",
    "repro.errors",
    "repro.flow",
    "repro.graph",
    "repro.metrics",
    "repro.obs",
    "repro.parallel",
    "repro.resilience",
    "repro.serving",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_imports_and_all_is_accurate(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{name} must declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"
    # __all__ stays sorted so diffs are readable (dunders excluded)
    plain = [s for s in exported if not s.startswith("__")]
    assert plain == sorted(plain), f"{name}.__all__ is not sorted"


def test_top_level_reexports_core_api():
    import repro

    for symbol in (
        "Graph",
        "ripple",
        "ripple_me",
        "vcce_td",
        "vcce_bu",
        "vcce_hybrid",
        "kvcc_hierarchy",
        "kvcc_containing",
        "verify_result",
        "accuracy_report",
        "parallel_ripple",
        "KvccIndex",
        "QueryEngine",
    ):
        assert hasattr(repro, symbol), symbol


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts)


def test_exception_hierarchy():
    from repro.errors import (
        GraphError,
        ParameterError,
        ParseError,
        ReproError,
    )

    assert issubclass(GraphError, ReproError)
    assert issubclass(ParseError, ReproError)
    assert issubclass(ParameterError, ReproError)
    assert issubclass(ParameterError, ValueError)  # documented contract


def test_cli_bench_registry_matches_parser():
    from repro.cli import _BENCHES, build_parser

    parser = build_parser()
    # every registered bench is an accepted CLI choice
    for name in _BENCHES:
        args = parser.parse_args(["bench", name])
        assert args.experiment == name


def test_reproduce_script_importable():
    """The one-shot report script imports cleanly (no side effects)."""
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "scripts" / "reproduce.py"
    spec = importlib.util.spec_from_file_location("reproduce", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
