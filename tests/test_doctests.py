"""Run the doctest examples embedded in module and API docstrings."""

import doctest
import importlib

import pytest

# importlib avoids attribute shadowing: ``repro.core.ripple`` the module
# is hidden behind ``repro.core.ripple`` the function after package init.
MODULE_NAMES = [
    "repro.core.hierarchy",
    "repro.core.result",
    "repro.core.ripple",
    "repro.flow.paths",
    "repro.graph.adjacency",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name} has no doctest examples"
    assert result.failed == 0
