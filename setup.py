"""Shim for editable installs on environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (legacy ``setup.py develop``) on
offline machines where PEP 517 editable builds cannot run.
"""

from setuptools import setup

setup()
